#include "dataset/generator.hpp"

#include <optional>
#include <stdexcept>

#include "analysis/analysis.hpp"
#include "graphgen/features.hpp"
#include "hls/flow.hpp"
#include "hlpow/features.hpp"
#include "io/cache.hpp"
#include "io/serial.hpp"
#include "kernels/polybench.hpp"
#include "obs/obs.hpp"
#include "sim/interpreter.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace powergear::dataset {

namespace {

/// Cache key of the sim stage: the trace depends only on the kernel IR and
/// the stimulus profile (directives never reach the interpreter).
std::uint64_t sim_stage_key(std::uint64_t ir_hash,
                            const sim::StimulusProfile& stim) {
    return io::Hasher()
        .feed(std::string(io::kArtifactFormatName))
        .feed(std::string(io::kStageSim))
        .feed(std::uint64_t{io::kSimPayloadVersion})
        .feed(ir_hash)
        .feed(stim.active_bits)
        .feed(stim.correlation)
        .feed(stim.seed)
        .value();
}

/// Cache key of one sample: everything the finished sample depends on —
/// kernel identity, directive config, every stage option, format versions,
/// and the upstream sim artifact hash.
std::uint64_t sample_stage_key(std::uint64_t ir_hash, std::uint64_t trace_hash,
                               const std::string& kernel_name,
                               const GeneratorOptions& opts,
                               const hls::Directives& dirs,
                               std::uint64_t design_index) {
    return io::Hasher()
        .feed(std::string(io::kArtifactFormatName))
        .feed(std::string(io::kStageSample))
        .feed(std::uint64_t{io::kSamplePayloadVersion})
        .feed(ir_hash)
        .feed(trace_hash)
        .feed(kernel_name)
        .feed(opts.seed)
        .feed(opts.board.place_moves_per_cell)
        .feed(opts.board.noise_amplitude)
        .feed(opts.board.noise_seed)
        .feed(opts.vivado.place_moves_per_cell)
        .feed(opts.vivado.place_seed)
        .feed(opts.vivado.activity_exponent)
        .feed(opts.vivado.default_logic_toggle)
        .feed(opts.run_vivado)
        .feed(dirs.to_string())
        .feed(design_index)
        .value();
}

/// Compute one sample from scratch: the per-point pipeline stages
/// hls -> graphgen (+ hlpow features) -> board label -> Vivado baseline.
Sample compute_sample(const ir::Function& fn, const hls::Directives& dirs,
                      std::uint64_t design_index, const sim::Trace& trace,
                      const hls::HlsReport& base_report,
                      const GeneratorOptions& opts) {
    Sample smp;
    smp.kernel = fn.name;
    smp.design_index = design_index;
    smp.directives = dirs;

    // --- hls + graphgen stages (timed: PowerGear's estimation-path cost) ---
    util::Timer pg_timer;
    const hls::Design design = hls::synthesize(fn, dirs);
    const sim::ActivityOracle oracle(fn, design.elab, trace,
                                     design.sched.total_latency);
    smp.graph = graphgen::construct_graph(fn, design.elab, design.binding,
                                          oracle);
    smp.metadata = hls::metadata_features(design.report, base_report);
    smp.tensors = gnn::GraphTensors::from(smp.graph, smp.metadata);
    smp.powergear_runtime_s = pg_timer.seconds();

    // Per-design artifact validation (schedule, graph, tensors) — debug
    // builds and POWERGEAR_CHECK=1; kept off the timed estimation path.
    if (analysis::checks_enabled()) {
        analysis::Report r = analysis::check_design(
            fn, design.elab, design.sched, smp.graph, smp.tensors);
        r.set_context(fn.name + "@" + dirs.to_string());
        analysis::require_clean(r, "dataset::generate_dataset_for");
    }

    smp.hlpow_feats = hlpow::hlpow_features(design.elab, oracle, smp.metadata);
    smp.latency_cycles = design.report.latency_cycles;

    // --- ground truth: board measurement ------------------------------
    const std::uint64_t sample_uid =
        util::hash_mix(std::hash<std::string>{}(fn.name), smp.design_index);
    const fpga::BoardMeasurement m =
        fpga::measure_on_board(fn, design.elab, design.binding, oracle,
                               design.report, sample_uid, opts.board);
    smp.total_power_w = m.total_w;
    smp.dynamic_power_w = m.dynamic_w;
    smp.static_power_w = m.static_w;

    // --- Vivado-like baseline flow -------------------------------------
    if (opts.run_vivado) {
        const fpga::VivadoEstimate est = fpga::vivado_estimate(
            fn, design.elab, design.binding, oracle, design.report,
            opts.vivado);
        smp.vivado_total_raw = est.total_w;
        smp.vivado_dynamic_raw = est.dynamic_w;
        smp.vivado_runtime_s = est.runtime_s;
    }
    return smp;
}

/// One design point to push through the per-point pipeline, with the
/// identity its cache key and Sample::design_index carry (positional for
/// generate_dataset_for, raw space index for generate_design_points).
struct PointJob {
    hls::Directives dirs;
    std::uint64_t design_index = 0;
};

/// Shared pipeline body: lint gate, lazily-materialized sim trace, serial
/// cache consult, parallel fan-out over the misses. Returns one Sample per
/// job, in job order.
std::vector<Sample> run_point_pipeline(const ir::Function& fn,
                                       const std::vector<PointJob>& jobs,
                                       const GeneratorOptions& opts) {
    // A malformed kernel would silently produce garbage labels for every
    // sample below, so the IR gate is unconditional (it is linear and runs
    // once per batch); lint warnings are tolerated, errors are not.
    analysis::Report ir_report = analysis::lint_ir(fn);
    ir_report.set_context(fn.name);
    analysis::require_clean(ir_report, "dataset::generate_dataset_for");

    const io::Cache cache(opts.cache_dir);
    const std::uint64_t ir_hash = io::hash_ir(fn);

    sim::StimulusProfile stim = opts.stimulus;
    stim.seed = util::hash_mix(opts.seed, std::hash<std::string>{}(fn.name));

    // --- sim stage: one trace per kernel, shared across design points. ----
    // The trace is materialized lazily: when every sample below hits the
    // cache, only the stored artifact's checksum is needed (it chains into
    // the sample keys), which a header peek provides without reading the
    // payload. `trace` stays empty on a fully-warm run.
    const std::uint64_t sim_key = sim_stage_key(ir_hash, stim);
    std::optional<sim::Trace> trace;
    std::uint64_t trace_hash = 0;
    if (cache.enabled()) {
        if (const std::optional<std::uint64_t> stored =
                cache.peek_checksum(io::kStageSim, sim_key,
                                    io::kSimPayloadVersion)) {
            trace_hash = *stored;
        } else {
            const obs::Scope sim_scope(obs::Phase::SimTrace);
            trace = sim::simulate(fn, stim);
            trace_hash = cache.store(io::kStageSim, sim_key,
                                     io::kSimPayloadVersion,
                                     io::encode_trace(*trace));
        }
    }
    const auto ensure_trace = [&]() -> const sim::Trace& {
        if (!trace) {
            // Peeked-but-never-loaded, or cache disabled. A vanished or
            // corrupt cache entry degrades to recomputation.
            if (cache.enabled()) {
                if (std::optional<std::vector<std::uint8_t>> payload =
                        cache.load(io::kStageSim, sim_key,
                                   io::kSimPayloadVersion)) {
                    trace = io::decode_trace(*payload);
                    return *trace;
                }
            }
            const obs::Scope sim_scope(obs::Phase::SimTrace);
            trace = sim::simulate(fn, stim);
        }
        return *trace;
    };
    if (!cache.enabled()) ensure_trace();

    // --- sample stage: consult the cache serially (I/O-bound, cheap), then
    // fan the misses out. Loads happen before the parallel region so a
    // corrupt entry can fall back to recomputation with the trace in hand.
    std::vector<std::optional<Sample>> ready(jobs.size());
    std::vector<std::uint64_t> keys(jobs.size(), 0);
    std::vector<std::size_t> misses;
    for (std::size_t p = 0; p < jobs.size(); ++p) {
        if (cache.enabled()) {
            keys[p] = sample_stage_key(ir_hash, trace_hash, fn.name, opts,
                                       jobs[p].dirs, jobs[p].design_index);
            if (std::optional<std::vector<std::uint8_t>> payload = cache.load(
                    io::kStageSample, keys[p], io::kSamplePayloadVersion)) {
                try {
                    ready[p] = io::decode_sample(*payload);
                    continue;
                } catch (const std::runtime_error&) {
                    obs::add(obs::Phase::Cache, "corrupt");
                }
            }
        }
        misses.push_back(p);
    }

    if (!misses.empty()) {
        const sim::Trace& the_trace = ensure_trace();
        // Unoptimized baseline report for the metadata scaling factors.
        const hls::HlsReport base_report =
            hls::synthesize(fn, hls::Directives{}).report;

        // Design points are independent given the shared trace and baseline
        // report (both read-only from here): the HLS -> activity -> graph ->
        // board-label flow fans out one task per missed point. Every
        // stochastic input (stimulus trace, per-sample measurement jitter)
        // is derived from hashes of (kernel, design_index), not from a
        // shared generator, so the samples are bit-identical at any
        // POWERGEAR_JOBS value — and bit-identical to what a warm run loads
        // back from the artifacts stored here.
        util::parallel_for(misses.size(), [&](std::size_t i) {
            const std::size_t p = misses[i];
            Sample smp = compute_sample(fn, jobs[p].dirs,
                                        jobs[p].design_index, the_trace,
                                        base_report, opts);
            if (cache.enabled())
                cache.store(io::kStageSample, keys[p],
                            io::kSamplePayloadVersion, io::encode_sample(smp));
            ready[p] = std::move(smp);
        });
    }

    std::vector<Sample> out;
    out.reserve(jobs.size());
    for (std::optional<Sample>& s : ready) out.push_back(std::move(*s));
    return out;
}

} // namespace

Dataset generate_dataset_for(const ir::Function& fn, const GeneratorOptions& opts) {
    const obs::Scope obs_scope(obs::Phase::DatasetGen);
    const hls::DesignSpace space(fn);
    const std::vector<hls::Directives> points =
        space.sample(opts.samples_per_dataset);
    std::vector<PointJob> jobs;
    jobs.reserve(points.size());
    // Positional design_index: this is the historical cache keyspace of
    // dataset generation (sample p of the golden-ratio draw), kept stable
    // so existing caches stay warm.
    for (std::size_t p = 0; p < points.size(); ++p)
        jobs.push_back(PointJob{points[p], static_cast<std::uint64_t>(p)});

    Dataset ds;
    ds.name = fn.name;
    ds.samples = run_point_pipeline(fn, jobs, opts);
    obs::add(obs::Phase::DatasetGen, "datasets");
    obs::add(obs::Phase::DatasetGen, "samples", ds.samples.size());
    return ds;
}

std::vector<Sample> generate_design_points(
    const ir::Function& fn, std::span<const std::uint64_t> space_indices,
    const GeneratorOptions& opts) {
    const obs::Scope obs_scope(obs::Phase::DatasetGen);
    const hls::DesignSpace space(fn);
    std::vector<PointJob> jobs;
    jobs.reserve(space_indices.size());
    for (const std::uint64_t idx : space_indices) {
        if (idx >= space.size())
            throw std::out_of_range(
                "generate_design_points: space index out of range");
        jobs.push_back(PointJob{space.point(idx), idx});
    }
    std::vector<Sample> out = run_point_pipeline(fn, jobs, opts);
    obs::add(obs::Phase::DatasetGen, "design_points", out.size());
    return out;
}

Dataset generate_dataset(const std::string& kernel_name,
                         const GeneratorOptions& opts) {
    const ir::Function fn =
        kernels::build_polybench(kernel_name, opts.problem_size);
    return generate_dataset_for(fn, opts);
}

std::vector<Dataset> generate_polybench_suite(const GeneratorOptions& opts) {
    std::vector<Dataset> out;
    for (const std::string& name : kernels::polybench_names())
        out.push_back(generate_dataset(name, opts));
    return out;
}

} // namespace powergear::dataset
