#include "dataset/generator.hpp"

#include "analysis/analysis.hpp"
#include "graphgen/features.hpp"
#include "hls/binding.hpp"
#include "hls/report.hpp"
#include "hls/scheduler.hpp"
#include "hlpow/features.hpp"
#include "kernels/polybench.hpp"
#include "obs/obs.hpp"
#include "sim/interpreter.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace powergear::dataset {

Dataset generate_dataset_for(const ir::Function& fn, const GeneratorOptions& opts) {
    const obs::Scope obs_scope(obs::Phase::DatasetGen);
    // A malformed kernel would silently produce garbage labels for every
    // sample below, so the IR gate is unconditional (it is linear and runs
    // once per dataset); lint warnings are tolerated, errors are not.
    analysis::Report ir_report = analysis::lint_ir(fn);
    ir_report.set_context(fn.name);
    analysis::require_clean(ir_report, "dataset::generate_dataset_for");

    Dataset ds;
    ds.name = fn.name;

    // One simulation per kernel: the value trace is directive-independent.
    sim::Interpreter interp(fn);
    sim::StimulusProfile stim = opts.stimulus;
    stim.seed = util::hash_mix(opts.seed, std::hash<std::string>{}(fn.name));
    sim::apply_stimulus(interp, fn, stim);
    const sim::Trace trace = interp.run();

    // Unoptimized baseline report for the metadata scaling factors.
    const hls::ElabGraph base_elab = hls::elaborate(fn, hls::Directives{});
    const hls::Schedule base_sched = hls::schedule(fn, base_elab);
    const hls::Binding base_bind = hls::bind(fn, base_elab, base_sched);
    const hls::HlsReport base_report =
        hls::make_report(fn, base_elab, base_sched, base_bind);

    const hls::DesignSpace space(fn);
    const std::vector<hls::Directives> points =
        space.sample(opts.samples_per_dataset);

    // Design points are independent given the shared trace and baseline
    // report (both read-only from here): the HLS -> activity -> graph ->
    // board-label flow fans out one task per point. Every stochastic input
    // (stimulus trace, per-sample measurement jitter) is derived from hashes
    // of (kernel, design_index), not from a shared generator, so the samples
    // are bit-identical at any POWERGEAR_JOBS value.
    ds.samples = util::parallel_map<Sample>(points.size(), [&](std::size_t p) {
        const hls::Directives& dirs = points[p];
        Sample smp;
        smp.kernel = fn.name;
        smp.design_index = static_cast<std::uint64_t>(p);
        smp.directives = dirs;

        // --- PowerGear-side flow (timed): HLS + graph construction --------
        util::Timer pg_timer;
        const hls::ElabGraph elab = hls::elaborate(fn, dirs);
        const hls::Schedule sched = hls::schedule(fn, elab);
        const hls::Binding binding = hls::bind(fn, elab, sched);
        const hls::HlsReport report = hls::make_report(fn, elab, sched, binding);
        const sim::ActivityOracle oracle(fn, elab, trace, sched.total_latency);
        smp.graph = graphgen::construct_graph(fn, elab, binding, oracle);
        smp.metadata = hls::metadata_features(report, base_report);
        smp.tensors = gnn::GraphTensors::from(smp.graph, smp.metadata);
        smp.powergear_runtime_s = pg_timer.seconds();

        // Per-design artifact validation (schedule, graph, tensors) — debug
        // builds and POWERGEAR_CHECK=1; kept off the timed estimation path.
        if (analysis::checks_enabled()) {
            analysis::Report r =
                analysis::check_design(fn, elab, sched, smp.graph, smp.tensors);
            r.set_context(fn.name + "@" + dirs.to_string());
            analysis::require_clean(r, "dataset::generate_dataset_for");
        }

        smp.hlpow_feats = hlpow::hlpow_features(elab, oracle, smp.metadata);
        smp.latency_cycles = report.latency_cycles;

        // --- ground truth: board measurement ------------------------------
        const std::uint64_t sample_uid = util::hash_mix(
            std::hash<std::string>{}(fn.name), smp.design_index);
        const fpga::BoardMeasurement m = fpga::measure_on_board(
            fn, elab, binding, oracle, report, sample_uid, opts.board);
        smp.total_power_w = m.total_w;
        smp.dynamic_power_w = m.dynamic_w;
        smp.static_power_w = m.static_w;

        // --- Vivado-like baseline flow -------------------------------------
        if (opts.run_vivado) {
            const fpga::VivadoEstimate est = fpga::vivado_estimate(
                fn, elab, binding, oracle, report, opts.vivado);
            smp.vivado_total_raw = est.total_w;
            smp.vivado_dynamic_raw = est.dynamic_w;
            smp.vivado_runtime_s = est.runtime_s;
        }

        return smp;
    });
    obs::add(obs::Phase::DatasetGen, "datasets");
    obs::add(obs::Phase::DatasetGen, "samples", ds.samples.size());
    return ds;
}

Dataset generate_dataset(const std::string& kernel_name,
                         const GeneratorOptions& opts) {
    const ir::Function fn =
        kernels::build_polybench(kernel_name, opts.problem_size);
    return generate_dataset_for(fn, opts);
}

std::vector<Dataset> generate_polybench_suite(const GeneratorOptions& opts) {
    std::vector<Dataset> out;
    for (const std::string& name : kernels::polybench_names())
        out.push_back(generate_dataset(name, opts));
    return out;
}

} // namespace powergear::dataset
