// Dataset generation: sweep a kernel's directive space, push each design
// point through the full flow (elaborate -> schedule -> bind -> simulate ->
// graph construction -> board measurement -> Vivado-like estimation) and
// package samples. The IR-level simulation trace is shared across design
// points of one kernel (the stimulus does not depend on directives), so a
// dataset costs one simulation plus per-point analysis.
#pragma once

#include <string>
#include <vector>

#include "dataset/sample.hpp"
#include "fpga/board.hpp"
#include "fpga/vivado_like.hpp"
#include "sim/stimulus.hpp"

namespace powergear::dataset {

struct GeneratorOptions {
    int samples_per_dataset = 24; ///< paper: ~500
    int problem_size = 16;        ///< Polybench matrix dimension
    std::uint64_t seed = 42;
    sim::StimulusProfile stimulus;     ///< seed is re-derived per kernel
    fpga::BoardOptions board;
    fpga::VivadoOptions vivado;
    bool run_vivado = true; ///< skip the baseline flow (faster unit tests)
};

/// Generate one dataset for a named Polybench kernel.
Dataset generate_dataset(const std::string& kernel_name,
                         const GeneratorOptions& opts = {});

/// Generate a dataset from an arbitrary (e.g. synthetic) IR function.
Dataset generate_dataset_for(const ir::Function& fn,
                             const GeneratorOptions& opts = {});

/// All nine Polybench datasets in Table I order.
std::vector<Dataset> generate_polybench_suite(const GeneratorOptions& opts = {});

} // namespace powergear::dataset
