// Dataset generation as an explicit staged pipeline:
//
//   hls (elaborate/schedule/bind/report) -> sim (value trace) ->
//   graphgen (power graph) -> sample (board label + features)
//
// Each design point runs the per-point stages (hls, graphgen, board
// measurement, Vivado-like baseline) and is packaged as one dataset::Sample;
// the IR-level simulation trace is shared across design points of one
// kernel (the stimulus does not depend on directives), so a cold dataset
// costs one simulation plus per-point analysis.
//
// When `cache_dir` is set, the sim trace and every finished sample are
// persisted as powergear-art-v1 artifacts through the content-addressed
// io::Cache: re-runs and DSE sweeps that revisit a configuration load the
// stored artifact instead of re-placing and re-simulating. Cache keys chain
// (kernel IR hash, stage options, format versions, upstream artifact hash,
// directives, design index), so any input change misses cleanly. Warm and
// cold runs produce bit-identical datasets at every POWERGEAR_JOBS value.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "dataset/sample.hpp"
#include "fpga/board.hpp"
#include "fpga/vivado_like.hpp"
#include "sim/stimulus.hpp"

namespace powergear::dataset {

struct GeneratorOptions {
    int samples_per_dataset = 24; ///< paper: ~500
    int problem_size = 16;        ///< Polybench matrix dimension
    std::uint64_t seed = 42;
    sim::StimulusProfile stimulus;     ///< seed is re-derived per kernel
    fpga::BoardOptions board;
    fpga::VivadoOptions vivado;
    bool run_vivado = true; ///< skip the baseline flow (faster unit tests)
    /// Pipeline-cache root; empty disables caching. The CLI resolves
    /// --cache-dir / POWERGEAR_CACHE into this; library callers set it
    /// explicitly so the library itself never reads the environment.
    std::string cache_dir;
};

/// Generate one dataset for a named Polybench kernel.
Dataset generate_dataset(const std::string& kernel_name,
                         const GeneratorOptions& opts = {});

/// Generate a dataset from an arbitrary (e.g. synthetic) IR function.
Dataset generate_dataset_for(const ir::Function& fn,
                             const GeneratorOptions& opts = {});

/// All nine Polybench datasets in Table I order.
std::vector<Dataset> generate_polybench_suite(const GeneratorOptions& opts = {});

/// Generate samples for explicit directive-space indices of `fn`'s
/// hls::DesignSpace, in the given order (the streaming-DSE shard path).
/// Unlike generate_dataset_for — whose cache keys use the *position* in its
/// golden-ratio sample — these samples are cache-keyed on the raw space
/// index, so sharded and unsharded sweeps of the same space address the
/// same artifacts and every worker filling one cache deduplicates work.
/// Throws std::out_of_range on an index >= the space size.
std::vector<Sample> generate_design_points(
    const ir::Function& fn, std::span<const std::uint64_t> space_indices,
    const GeneratorOptions& opts = {});

} // namespace powergear::dataset
