// Random loop-nest generator. The paper mentions "some synthetic datasets to
// increase the diversity of loop patterns in training"; this module produces
// structurally valid random kernels (verified IR) with configurable depth,
// operation mix and array counts for exactly that purpose.
#pragma once

#include "ir/ir.hpp"
#include "util/rng.hpp"

namespace powergear::kernels {

/// Knobs for the random kernel generator.
struct SyntheticSpec {
    int max_depth = 3;        ///< maximum loop-nest depth
    int min_trip = 4;         ///< minimum loop trip count
    int max_trip = 16;        ///< maximum loop trip count
    int num_arrays = 3;       ///< external arrays available to the kernel
    int ops_per_body = 6;     ///< arithmetic ops emitted per loop body
    double mul_fraction = 0.4;///< fraction of arithmetic ops that are multiplies
    double cast_fraction = 0.15; ///< fraction of values passed through casts
};

/// Generate a random but verifier-clean kernel named "syn<tag>".
ir::Function build_synthetic(const SyntheticSpec& spec, util::Rng& rng, int tag);

} // namespace powergear::kernels
