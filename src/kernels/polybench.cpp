#include "kernels/polybench.hpp"

#include <stdexcept>

#include "ir/builder.hpp"
#include "ir/verifier.hpp"

namespace powergear::kernels {

using ir::Builder;
using ir::Function;

namespace {

constexpr std::int64_t kAlpha = 3; // polybench's alpha/beta scalars
constexpr std::int64_t kBeta = 2;

Function finish(Builder& b) {
    b.ret();
    Function f = b.build();
    ir::verify_or_throw(f);
    return f;
}

} // namespace

const std::vector<std::string>& polybench_names() {
    static const std::vector<std::string> names = {
        "atax", "bicg", "gemm", "gesummv", "k2mm",
        "k3mm", "mvt",  "syrk", "syr2k"};
    return names;
}

// atax: y = A^T (A x)
Function build_atax(int n) {
    Builder b("atax");
    const int A = b.array("A", {n, n});
    const int x = b.array("x", {n});
    const int y = b.array("y", {n});
    const int tmp = b.array("tmp", {n}, /*external=*/false);
    const int acc = b.reg("acc");

    b.begin_loop("init_y", n);
    b.store(y, {b.indvar()}, b.constant(0));
    b.end_loop();

    b.begin_loop("row", n);
    {
        const int i = b.indvar();
        b.store_reg(acc, b.constant(0));
        b.begin_loop("dot", n);
        {
            const int j = b.indvar();
            const int prod = b.mul(b.load(A, {i, j}), b.load(x, {j}));
            b.store_reg(acc, b.add(b.load_reg(acc), prod));
        }
        b.end_loop();
        b.store(tmp, {i}, b.load_reg(acc));
        b.begin_loop("update_y", n);
        {
            const int j = b.indvar();
            const int prod = b.mul(b.load(A, {i, j}), b.load(tmp, {i}));
            b.store(y, {j}, b.add(b.load(y, {j}), prod));
        }
        b.end_loop();
    }
    b.end_loop();
    return finish(b);
}

// bicg: s = r^T A ; q = A p
Function build_bicg(int n) {
    Builder b("bicg");
    const int A = b.array("A", {n, n});
    const int r = b.array("r", {n});
    const int p = b.array("p", {n});
    const int s = b.array("s", {n});
    const int q = b.array("q", {n});
    const int acc = b.reg("acc_q");

    b.begin_loop("init_s", n);
    b.store(s, {b.indvar()}, b.constant(0));
    b.end_loop();

    b.begin_loop("row", n);
    {
        const int i = b.indvar();
        b.store_reg(acc, b.constant(0));
        b.begin_loop("col", n);
        {
            const int j = b.indvar();
            const int a_ij = b.load(A, {i, j});
            const int s_new = b.add(b.load(s, {j}), b.mul(b.load(r, {i}), a_ij));
            b.store(s, {j}, s_new);
            const int q_term = b.mul(a_ij, b.load(p, {j}));
            b.store_reg(acc, b.add(b.load_reg(acc), q_term));
        }
        b.end_loop();
        b.store(q, {i}, b.load_reg(acc));
    }
    b.end_loop();
    return finish(b);
}

// gemm: C = alpha*A*B + beta*C
Function build_gemm(int n) {
    Builder b("gemm");
    const int A = b.array("A", {n, n});
    const int B = b.array("B", {n, n});
    const int C = b.array("C", {n, n});
    const int acc = b.reg("acc");

    b.begin_loop("i", n);
    {
        const int i = b.indvar();
        b.begin_loop("j", n);
        {
            const int j = b.indvar();
            b.store_reg(acc, b.mul(b.load(C, {i, j}), b.constant(kBeta)));
            b.begin_loop("k", n);
            {
                const int k = b.indvar();
                const int prod = b.mul(b.load(A, {i, k}), b.load(B, {k, j}));
                const int scaled = b.mul(prod, b.constant(kAlpha));
                b.store_reg(acc, b.add(b.load_reg(acc), scaled));
            }
            b.end_loop();
            b.store(C, {i, j}, b.load_reg(acc));
        }
        b.end_loop();
    }
    b.end_loop();
    return finish(b);
}

// gesummv: y = alpha*A*x + beta*B*x
Function build_gesummv(int n) {
    Builder b("gesummv");
    const int A = b.array("A", {n, n});
    const int B = b.array("B", {n, n});
    const int x = b.array("x", {n});
    const int y = b.array("y", {n});
    const int acc1 = b.reg("acc_a");
    const int acc2 = b.reg("acc_b");

    b.begin_loop("row", n);
    {
        const int i = b.indvar();
        b.store_reg(acc1, b.constant(0));
        b.store_reg(acc2, b.constant(0));
        b.begin_loop("col", n);
        {
            const int j = b.indvar();
            const int xj = b.load(x, {j});
            b.store_reg(acc1, b.add(b.load_reg(acc1), b.mul(b.load(A, {i, j}), xj)));
            b.store_reg(acc2, b.add(b.load_reg(acc2), b.mul(b.load(B, {i, j}), xj)));
        }
        b.end_loop();
        const int lhs = b.mul(b.load_reg(acc1), b.constant(kAlpha));
        const int rhs = b.mul(b.load_reg(acc2), b.constant(kBeta));
        b.store(y, {i}, b.add(lhs, rhs));
    }
    b.end_loop();
    return finish(b);
}

// 2mm: D = alpha*A*B*C + beta*D
Function build_2mm(int n) {
    Builder b("k2mm");
    const int A = b.array("A", {n, n});
    const int B = b.array("B", {n, n});
    const int C = b.array("C", {n, n});
    const int D = b.array("D", {n, n});
    const int tmp = b.array("tmp", {n, n}, /*external=*/false);
    const int acc = b.reg("acc");

    b.begin_loop("mm1_i", n);
    {
        const int i = b.indvar();
        b.begin_loop("mm1_j", n);
        {
            const int j = b.indvar();
            b.store_reg(acc, b.constant(0));
            b.begin_loop("mm1_k", n);
            {
                const int k = b.indvar();
                const int prod = b.mul(b.load(A, {i, k}), b.load(B, {k, j}));
                b.store_reg(acc, b.add(b.load_reg(acc), b.mul(prod, b.constant(kAlpha))));
            }
            b.end_loop();
            b.store(tmp, {i, j}, b.load_reg(acc));
        }
        b.end_loop();
    }
    b.end_loop();

    b.begin_loop("mm2_i", n);
    {
        const int i = b.indvar();
        b.begin_loop("mm2_j", n);
        {
            const int j = b.indvar();
            b.store_reg(acc, b.mul(b.load(D, {i, j}), b.constant(kBeta)));
            b.begin_loop("mm2_k", n);
            {
                const int k = b.indvar();
                const int prod = b.mul(b.load(tmp, {i, k}), b.load(C, {k, j}));
                b.store_reg(acc, b.add(b.load_reg(acc), prod));
            }
            b.end_loop();
            b.store(D, {i, j}, b.load_reg(acc));
        }
        b.end_loop();
    }
    b.end_loop();
    return finish(b);
}

// 3mm: G = (A*B) * (C*D)
Function build_3mm(int n) {
    Builder b("k3mm");
    const int A = b.array("A", {n, n});
    const int B = b.array("B", {n, n});
    const int C = b.array("C", {n, n});
    const int D = b.array("D", {n, n});
    const int G = b.array("G", {n, n});
    const int E = b.array("E", {n, n}, /*external=*/false);
    const int F = b.array("F", {n, n}, /*external=*/false);
    const int acc = b.reg("acc");

    auto matmul = [&](const char* tag, int dst, int lhs, int rhs) {
        b.begin_loop(std::string(tag) + "_i", n);
        const int i = b.indvar();
        b.begin_loop(std::string(tag) + "_j", n);
        const int j = b.indvar();
        b.store_reg(acc, b.constant(0));
        b.begin_loop(std::string(tag) + "_k", n);
        const int k = b.indvar();
        const int prod = b.mul(b.load(lhs, {i, k}), b.load(rhs, {k, j}));
        b.store_reg(acc, b.add(b.load_reg(acc), prod));
        b.end_loop();
        b.store(dst, {i, j}, b.load_reg(acc));
        b.end_loop();
        b.end_loop();
    };

    matmul("mm1", E, A, B);
    matmul("mm2", F, C, D);
    matmul("mm3", G, E, F);
    return finish(b);
}

// mvt: x1 += A*y1 ; x2 += A^T*y2
Function build_mvt(int n) {
    Builder b("mvt");
    const int A = b.array("A", {n, n});
    const int x1 = b.array("x1", {n});
    const int x2 = b.array("x2", {n});
    const int y1 = b.array("y1", {n});
    const int y2 = b.array("y2", {n});
    const int acc = b.reg("acc");

    b.begin_loop("mv1", n);
    {
        const int i = b.indvar();
        b.store_reg(acc, b.load(x1, {i}));
        b.begin_loop("mv1_dot", n);
        {
            const int j = b.indvar();
            b.store_reg(acc, b.add(b.load_reg(acc),
                                   b.mul(b.load(A, {i, j}), b.load(y1, {j}))));
        }
        b.end_loop();
        b.store(x1, {i}, b.load_reg(acc));
    }
    b.end_loop();

    b.begin_loop("mv2", n);
    {
        const int i = b.indvar();
        b.store_reg(acc, b.load(x2, {i}));
        b.begin_loop("mv2_dot", n);
        {
            const int j = b.indvar();
            b.store_reg(acc, b.add(b.load_reg(acc),
                                   b.mul(b.load(A, {j, i}), b.load(y2, {j}))));
        }
        b.end_loop();
        b.store(x2, {i}, b.load_reg(acc));
    }
    b.end_loop();
    return finish(b);
}

// syrk: C = alpha*A*A^T + beta*C
Function build_syrk(int n) {
    Builder b("syrk");
    const int A = b.array("A", {n, n});
    const int C = b.array("C", {n, n});
    const int acc = b.reg("acc");

    b.begin_loop("i", n);
    {
        const int i = b.indvar();
        b.begin_loop("j", n);
        {
            const int j = b.indvar();
            b.store_reg(acc, b.mul(b.load(C, {i, j}), b.constant(kBeta)));
            b.begin_loop("k", n);
            {
                const int k = b.indvar();
                const int prod = b.mul(b.load(A, {i, k}), b.load(A, {j, k}));
                b.store_reg(acc, b.add(b.load_reg(acc), b.mul(prod, b.constant(kAlpha))));
            }
            b.end_loop();
            b.store(C, {i, j}, b.load_reg(acc));
        }
        b.end_loop();
    }
    b.end_loop();
    return finish(b);
}

// syr2k: C = alpha*(A*B^T + B*A^T) + beta*C
Function build_syr2k(int n) {
    Builder b("syr2k");
    const int A = b.array("A", {n, n});
    const int B = b.array("B", {n, n});
    const int C = b.array("C", {n, n});
    const int acc = b.reg("acc");

    b.begin_loop("i", n);
    {
        const int i = b.indvar();
        b.begin_loop("j", n);
        {
            const int j = b.indvar();
            b.store_reg(acc, b.mul(b.load(C, {i, j}), b.constant(kBeta)));
            b.begin_loop("k", n);
            {
                const int k = b.indvar();
                const int t1 = b.mul(b.load(A, {i, k}), b.load(B, {j, k}));
                const int t2 = b.mul(b.load(B, {i, k}), b.load(A, {j, k}));
                const int both = b.mul(b.add(t1, t2), b.constant(kAlpha));
                b.store_reg(acc, b.add(b.load_reg(acc), both));
            }
            b.end_loop();
            b.store(C, {i, j}, b.load_reg(acc));
        }
        b.end_loop();
    }
    b.end_loop();
    return finish(b);
}

const std::vector<std::string>& extended_kernel_names() {
    static const std::vector<std::string> names = {"doitgen", "jacobi2d"};
    return names;
}

// doitgen: sum[r][q][p] = sum_s A[r][q][s] * C4[s][p]
Function build_doitgen(int n) {
    Builder b("doitgen");
    const int A = b.array("A", {n, n, n});
    const int C4 = b.array("C4", {n, n});
    const int out = b.array("sum", {n, n, n});
    const int acc = b.reg("acc");

    b.begin_loop("r", n);
    {
        const int r = b.indvar();
        b.begin_loop("q", n);
        {
            const int q = b.indvar();
            b.begin_loop("p", n);
            {
                const int pp = b.indvar();
                b.store_reg(acc, b.constant(0));
                b.begin_loop("s", n);
                {
                    const int ss = b.indvar();
                    const int prod =
                        b.mul(b.load(A, {r, q, ss}), b.load(C4, {ss, pp}));
                    b.store_reg(acc, b.add(b.load_reg(acc), prod));
                }
                b.end_loop();
                b.store(out, {r, q, pp}, b.load_reg(acc));
            }
            b.end_loop();
        }
        b.end_loop();
    }
    b.end_loop();
    return finish(b);
}

// jacobi-2d (one sweep): A[i][j] = (B[i][j] + B[i][j-1] + B[i][j+1]
//                                   + B[i-1][j] + B[i+1][j]) / 5
// over the interior; loop indices are offset by +1 into the full array.
Function build_jacobi2d(int n) {
    Builder b("jacobi2d");
    const int Bm = b.array("B", {n, n});
    const int Am = b.array("A", {n, n});
    const int interior = std::max(1, n - 2);

    b.begin_loop("i", interior);
    {
        const int i = b.add(b.indvar(), b.constant(1));
        b.begin_loop("j", interior);
        {
            const int j = b.add(b.indvar(), b.constant(1));
            const int left = b.load(Bm, {i, b.sub(j, b.constant(1))});
            const int right = b.load(Bm, {i, b.add(j, b.constant(1))});
            const int up = b.load(Bm, {b.sub(i, b.constant(1)), j});
            const int down = b.load(Bm, {b.add(i, b.constant(1)), j});
            const int center = b.load(Bm, {i, j});
            const int sum =
                b.add(b.add(b.add(center, left), b.add(right, up)), down);
            b.store(Am, {i, j}, b.div(sum, b.constant(5)));
        }
        b.end_loop();
    }
    b.end_loop();
    return finish(b);
}

ir::Function build_polybench(const std::string& name, int size) {
    if (size < 2) throw std::invalid_argument("build_polybench: size < 2");
    if (name == "atax") return build_atax(size);
    if (name == "bicg") return build_bicg(size);
    if (name == "gemm") return build_gemm(size);
    if (name == "gesummv") return build_gesummv(size);
    if (name == "k2mm" || name == "2mm") return build_2mm(size);
    if (name == "k3mm" || name == "3mm") return build_3mm(size);
    if (name == "mvt") return build_mvt(size);
    if (name == "syrk") return build_syrk(size);
    if (name == "syr2k") return build_syr2k(size);
    if (name == "doitgen") return build_doitgen(size);
    if (name == "jacobi2d") return build_jacobi2d(size);
    throw std::invalid_argument("build_polybench: unknown kernel '" + name + "'");
}

} // namespace powergear::kernels
