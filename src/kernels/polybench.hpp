// Programmatic IR builders for the nine Polybench kernels the paper
// evaluates on: atax, bicg, gemm, gesummv, 2mm, 3mm, mvt, syrk, syr2k.
//
// Each builder emits the loop nest of the reference C kernel (32-bit integer
// arithmetic) with scalar accumulator registers, mirroring the IR Vivado HLS
// would produce before directive-driven optimization. The problem size is a
// single knob so activity traces stay cheap on one core.
#pragma once

#include <string>
#include <vector>

#include "ir/ir.hpp"

namespace powergear::kernels {

/// Names of the nine Polybench datasets, in the paper's Table I order.
const std::vector<std::string>& polybench_names();

/// Additional Polybench kernels beyond the paper's nine (extension):
/// usable as extra training diversity or unseen-kernel stress tests.
const std::vector<std::string>& extended_kernel_names();

/// Build a Polybench kernel by name ("atax", "bicg", "gemm", "gesummv",
/// "k2mm", "k3mm", "mvt", "syrk", "syr2k"; "2mm"/"3mm" accepted as aliases).
/// Throws std::invalid_argument for unknown names.
ir::Function build_polybench(const std::string& name, int size = 12);

// Individual builders (size = square problem dimension).
ir::Function build_atax(int size = 12);
ir::Function build_bicg(int size = 12);
ir::Function build_gemm(int size = 12);
ir::Function build_gesummv(int size = 12);
ir::Function build_2mm(int size = 12);
ir::Function build_3mm(int size = 12);
ir::Function build_mvt(int size = 12);
ir::Function build_syrk(int size = 12);
ir::Function build_syr2k(int size = 12);
ir::Function build_doitgen(int size = 8);
ir::Function build_jacobi2d(int size = 12);

} // namespace powergear::kernels
