#include "kernels/synthetic.hpp"

#include <algorithm>
#include <string>
#include <vector>

#include "ir/builder.hpp"
#include "ir/verifier.hpp"

namespace powergear::kernels {

using ir::Builder;

namespace {

/// Emit one loop body: load operands from arrays, combine them with a random
/// arithmetic mix, and store the result back. `ivs` holds the induction
/// variables of all enclosing loops, innermost last.
void emit_body(Builder& b, const SyntheticSpec& spec, util::Rng& rng,
               const std::vector<int>& arrays, const std::vector<int>& ivs) {
    auto rand_index = [&]() { return ivs[rng.next_below(ivs.size())]; };
    auto rand_array = [&]() { return arrays[rng.next_below(arrays.size())]; };

    std::vector<int> values;
    values.push_back(b.load(rand_array(), {rand_index()}));
    values.push_back(b.load(rand_array(), {rand_index()}));

    for (int k = 0; k < spec.ops_per_body; ++k) {
        const int a = values[rng.next_below(values.size())];
        const int c = values[rng.next_below(values.size())];
        int v;
        if (rng.next_bool(spec.mul_fraction)) {
            v = b.mul(a, c);
        } else {
            switch (rng.next_below(4)) {
                case 0: v = b.add(a, c); break;
                case 1: v = b.sub(a, c); break;
                case 2: v = b.xor_(a, c); break;
                default: v = b.add(a, b.constant(rng.next_range(1, 7))); break;
            }
        }
        if (rng.next_bool(spec.cast_fraction)) {
            // Exercise the graph-trimming path with a narrow-then-widen pair.
            v = b.sext(b.trunc(v, 16), 32);
        }
        values.push_back(v);
        if (rng.next_bool(0.3))
            values.push_back(b.load(rand_array(), {rand_index()}));
    }
    b.store(rand_array(), {rand_index()}, values.back());
}

void emit_nest(Builder& b, const SyntheticSpec& spec, util::Rng& rng,
               const std::vector<int>& arrays, std::vector<int>& ivs,
               int depth, int& loop_counter) {
    const int trip = static_cast<int>(rng.next_range(spec.min_trip, spec.max_trip));
    // += instead of `"L" + ...`: avoids GCC 12's -O3 -Wrestrict false
    // positive (PR105651) so the tree builds with -Werror.
    std::string loop_name = "L";
    loop_name += std::to_string(loop_counter++);
    b.begin_loop(loop_name, trip);
    ivs.push_back(b.indvar());
    if (depth + 1 < spec.max_depth && rng.next_bool(0.6)) {
        // Occasionally emit a statement before recursing so bodies are not
        // purely nested (mirrors Polybench's init-then-compute shape).
        if (rng.next_bool(0.4)) emit_body(b, spec, rng, arrays, ivs);
        emit_nest(b, spec, rng, arrays, ivs, depth + 1, loop_counter);
    } else {
        emit_body(b, spec, rng, arrays, ivs);
    }
    ivs.pop_back();
    b.end_loop();
}

} // namespace

ir::Function build_synthetic(const SyntheticSpec& spec, util::Rng& rng, int tag) {
    Builder b("syn" + std::to_string(tag));
    // All arrays are 1-D with the maximum trip count so any induction variable
    // indexes in bounds.
    std::vector<int> arrays;
    for (int a = 0; a < std::max(1, spec.num_arrays); ++a)
        arrays.push_back(
            b.array("buf" + std::to_string(a), {spec.max_trip}, /*external=*/true));

    int loop_counter = 0;
    const int num_nests = static_cast<int>(rng.next_range(1, 2));
    for (int nest = 0; nest < num_nests; ++nest) {
        std::vector<int> ivs;
        emit_nest(b, spec, rng, arrays, ivs, 0, loop_counter);
    }
    b.ret();
    ir::Function f = b.build();
    ir::verify_or_throw(f);
    return f;
}

} // namespace powergear::kernels
