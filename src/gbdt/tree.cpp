#include "gbdt/tree.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace powergear::gbdt {

namespace {

double mean_of(const std::vector<float>& y, const std::vector<int>& idx) {
    double s = 0.0;
    for (int i : idx) s += y[static_cast<std::size_t>(i)];
    return idx.empty() ? 0.0 : s / static_cast<double>(idx.size());
}

} // namespace

void RegressionTree::fit(const std::vector<std::vector<float>>& X,
                         const std::vector<float>& y,
                         const std::vector<int>& idx, const TreeConfig& cfg) {
    if (X.size() != y.size() || idx.empty())
        throw std::invalid_argument("RegressionTree::fit: bad inputs");
    nodes_.clear();
    build(X, y, idx, 0, cfg);
}

int RegressionTree::build(const std::vector<std::vector<float>>& X,
                          const std::vector<float>& y, std::vector<int> idx,
                          int depth, const TreeConfig& cfg) {
    const int self = static_cast<int>(nodes_.size());
    nodes_.push_back(Node{});
    nodes_[static_cast<std::size_t>(self)].value =
        static_cast<float>(mean_of(y, idx));

    const int n = static_cast<int>(idx.size());
    if (depth >= cfg.max_depth || n < 2 * cfg.min_samples_leaf) return self;

    const int dims = static_cast<int>(X[static_cast<std::size_t>(idx[0])].size());
    double best_gain = 1e-12;
    int best_feat = -1;
    float best_thresh = 0.0f;

    // Total sums for SSE-reduction computation.
    double total_sum = 0.0, total_sq = 0.0;
    for (int i : idx) {
        const double v = y[static_cast<std::size_t>(i)];
        total_sum += v;
        total_sq += v * v;
    }
    const double parent_sse =
        total_sq - total_sum * total_sum / static_cast<double>(n);

    std::vector<int> sorted = idx;
    for (int f = 0; f < dims; ++f) {
        std::sort(sorted.begin(), sorted.end(), [&](int a, int b) {
            return X[static_cast<std::size_t>(a)][static_cast<std::size_t>(f)] <
                   X[static_cast<std::size_t>(b)][static_cast<std::size_t>(f)];
        });
        double left_sum = 0.0, left_sq = 0.0;
        for (int k = 0; k < n - 1; ++k) {
            const double v = y[static_cast<std::size_t>(sorted[static_cast<std::size_t>(k)])];
            left_sum += v;
            left_sq += v * v;
            const float xv = X[static_cast<std::size_t>(
                sorted[static_cast<std::size_t>(k)])][static_cast<std::size_t>(f)];
            const float xn = X[static_cast<std::size_t>(
                sorted[static_cast<std::size_t>(k + 1)])][static_cast<std::size_t>(f)];
            if (xv == xn) continue; // can't split between equal values
            const int nl = k + 1, nr = n - nl;
            if (nl < cfg.min_samples_leaf || nr < cfg.min_samples_leaf) continue;
            const double right_sum = total_sum - left_sum;
            const double right_sq = total_sq - left_sq;
            const double sse =
                (left_sq - left_sum * left_sum / nl) +
                (right_sq - right_sum * right_sum / nr);
            const double gain = parent_sse - sse;
            if (gain > best_gain) {
                best_gain = gain;
                best_feat = f;
                best_thresh = 0.5f * (xv + xn);
            }
        }
    }
    if (best_feat < 0) return self;

    std::vector<int> left_idx, right_idx;
    for (int i : idx) {
        if (X[static_cast<std::size_t>(i)][static_cast<std::size_t>(best_feat)] <=
            best_thresh)
            left_idx.push_back(i);
        else
            right_idx.push_back(i);
    }
    if (left_idx.empty() || right_idx.empty()) return self;

    nodes_[static_cast<std::size_t>(self)].feature = best_feat;
    nodes_[static_cast<std::size_t>(self)].threshold = best_thresh;
    const int l = build(X, y, std::move(left_idx), depth + 1, cfg);
    const int r = build(X, y, std::move(right_idx), depth + 1, cfg);
    nodes_[static_cast<std::size_t>(self)].left = l;
    nodes_[static_cast<std::size_t>(self)].right = r;
    return self;
}

float RegressionTree::predict(const std::vector<float>& x) const {
    if (nodes_.empty()) return 0.0f;
    int cur = 0;
    while (nodes_[static_cast<std::size_t>(cur)].feature >= 0) {
        const Node& n = nodes_[static_cast<std::size_t>(cur)];
        cur = x[static_cast<std::size_t>(n.feature)] <= n.threshold ? n.left
                                                                    : n.right;
    }
    return nodes_[static_cast<std::size_t>(cur)].value;
}

int RegressionTree::depth() const {
    // Depth via iterative DFS over the child links.
    if (nodes_.empty()) return 0;
    std::vector<std::pair<int, int>> stack{{0, 1}};
    int maxd = 1;
    while (!stack.empty()) {
        auto [node, d] = stack.back();
        stack.pop_back();
        maxd = std::max(maxd, d);
        const Node& n = nodes_[static_cast<std::size_t>(node)];
        if (n.left >= 0) stack.push_back({n.left, d + 1});
        if (n.right >= 0) stack.push_back({n.right, d + 1});
    }
    return maxd;
}

} // namespace powergear::gbdt
