// Gradient-boosted regression trees (least-squares boosting), plus the
// validation-driven hyperparameter search the paper applies to HL-Pow
// (tree size in [10,500], depth in [5,10], min samples per leaf in [2,8],
// learning rate in {0.005, 0.01, 0.05}).
#pragma once

#include <vector>

#include "gbdt/tree.hpp"
#include "util/rng.hpp"

namespace powergear::gbdt {

struct GbdtConfig {
    int num_trees = 150;
    int max_depth = 6;
    int min_samples_leaf = 2;
    double learning_rate = 0.05;
};

class Gbdt {
public:
    void fit(const std::vector<std::vector<float>>& X,
             const std::vector<float>& y, const GbdtConfig& cfg);

    float predict(const std::vector<float>& x) const;

    int num_trees() const { return static_cast<int>(trees_.size()); }
    const GbdtConfig& config() const { return cfg_; }

private:
    GbdtConfig cfg_;
    float base_ = 0.0f;
    std::vector<RegressionTree> trees_;
};

/// Grid entry for tuning.
struct GbdtGrid {
    std::vector<int> num_trees = {50, 150, 300};
    std::vector<int> max_depth = {5, 8, 10};
    std::vector<int> min_samples_leaf = {2, 8};
    std::vector<double> learning_rate = {0.01, 0.05};
};

/// Fit with hyperparameter tuning on a held-out validation split (MAPE
/// criterion); returns the model refit on all data with the best config.
Gbdt fit_with_tuning(const std::vector<std::vector<float>>& X,
                     const std::vector<float>& y, const GbdtGrid& grid,
                     double validation_fraction, util::Rng& rng);

} // namespace powergear::gbdt
