#include "gbdt/gbdt.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace powergear::gbdt {

void Gbdt::fit(const std::vector<std::vector<float>>& X,
               const std::vector<float>& y, const GbdtConfig& cfg) {
    if (X.size() != y.size() || X.empty())
        throw std::invalid_argument("Gbdt::fit: bad inputs");
    cfg_ = cfg;
    trees_.clear();

    double mean = 0.0;
    for (float v : y) mean += v;
    base_ = static_cast<float>(mean / static_cast<double>(y.size()));

    std::vector<float> residual(y.size());
    std::vector<float> current(y.size(), base_);
    std::vector<int> all_idx(X.size());
    for (std::size_t i = 0; i < X.size(); ++i) all_idx[i] = static_cast<int>(i);

    TreeConfig tc;
    tc.max_depth = cfg.max_depth;
    tc.min_samples_leaf = cfg.min_samples_leaf;

    for (int m = 0; m < cfg.num_trees; ++m) {
        for (std::size_t i = 0; i < y.size(); ++i) residual[i] = y[i] - current[i];
        RegressionTree tree;
        tree.fit(X, residual, all_idx, tc);
        for (std::size_t i = 0; i < y.size(); ++i)
            current[i] += static_cast<float>(cfg.learning_rate) * tree.predict(X[i]);
        trees_.push_back(std::move(tree));
    }
}

float Gbdt::predict(const std::vector<float>& x) const {
    double p = base_;
    for (const RegressionTree& t : trees_)
        p += cfg_.learning_rate * t.predict(x);
    return static_cast<float>(p);
}

Gbdt fit_with_tuning(const std::vector<std::vector<float>>& X,
                     const std::vector<float>& y, const GbdtGrid& grid,
                     double validation_fraction, util::Rng& rng) {
    if (X.size() < 4) {
        Gbdt model;
        model.fit(X, y, GbdtConfig{});
        return model;
    }
    std::vector<int> order(X.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
    rng.shuffle(order);
    const int val_n = std::max(
        1, static_cast<int>(std::lround(validation_fraction *
                                        static_cast<double>(X.size()))));

    std::vector<std::vector<float>> Xt, Xv;
    std::vector<float> yt, yv;
    for (std::size_t i = 0; i < order.size(); ++i) {
        const int idx = order[i];
        if (static_cast<int>(i) < val_n) {
            Xv.push_back(X[static_cast<std::size_t>(idx)]);
            yv.push_back(y[static_cast<std::size_t>(idx)]);
        } else {
            Xt.push_back(X[static_cast<std::size_t>(idx)]);
            yt.push_back(y[static_cast<std::size_t>(idx)]);
        }
    }

    GbdtConfig best_cfg;
    double best_err = std::numeric_limits<double>::infinity();
    for (int trees : grid.num_trees)
        for (int depth : grid.max_depth)
            for (int leaf : grid.min_samples_leaf)
                for (double lr : grid.learning_rate) {
                    GbdtConfig cfg{trees, depth, leaf, lr};
                    Gbdt model;
                    model.fit(Xt, yt, cfg);
                    double err = 0.0;
                    for (std::size_t i = 0; i < Xv.size(); ++i)
                        err += std::abs(model.predict(Xv[i]) - yv[i]) /
                               std::max(1e-9f, std::abs(yv[i]));
                    if (err < best_err) {
                        best_err = err;
                        best_cfg = cfg;
                    }
                }

    Gbdt final_model;
    final_model.fit(X, y, best_cfg);
    return final_model;
}

} // namespace powergear::gbdt
