// CART-style regression tree (exact greedy splits, SSE criterion) — the base
// learner for the gradient-boosting model used by the HL-Pow baseline.
#pragma once

#include <vector>

namespace powergear::gbdt {

struct TreeConfig {
    int max_depth = 6;
    int min_samples_leaf = 2;
};

class RegressionTree {
public:
    /// Fit on rows X[idx] with targets y[idx].
    void fit(const std::vector<std::vector<float>>& X, const std::vector<float>& y,
             const std::vector<int>& idx, const TreeConfig& cfg);

    float predict(const std::vector<float>& x) const;

    int num_nodes() const { return static_cast<int>(nodes_.size()); }
    int depth() const;

private:
    struct Node {
        int feature = -1; ///< -1 => leaf
        float threshold = 0.0f;
        int left = -1;
        int right = -1;
        float value = 0.0f;
    };

    int build(const std::vector<std::vector<float>>& X,
              const std::vector<float>& y, std::vector<int> idx, int depth,
              const TreeConfig& cfg);

    std::vector<Node> nodes_;
};

} // namespace powergear::gbdt
