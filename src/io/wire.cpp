#include "io/wire.hpp"

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

namespace powergear::io {

bool serve_op_valid(std::uint8_t op) {
    return op >= static_cast<std::uint8_t>(ServeOp::Estimate) &&
           op <= static_cast<std::uint8_t>(ServeOp::Shutdown);
}

std::vector<std::uint8_t> encode_serve_request(const ServeRequest& req) {
    Writer w;
    w.u64(req.id);
    w.u8(static_cast<std::uint8_t>(req.op));
    w.u64(req.sample_payload.size());
    for (const std::uint8_t b : req.sample_payload) w.u8(b);
    return w.take();
}

ServeRequest decode_serve_request(const std::vector<std::uint8_t>& payload) {
    Reader r(payload);
    ServeRequest req;
    req.id = r.u64();
    const std::uint8_t op = r.u8();
    if (!serve_op_valid(op))
        throw std::runtime_error("serve: unknown request op " +
                                 std::to_string(op));
    req.op = static_cast<ServeOp>(op);
    const std::uint64_t n = r.u64();
    if (n > kServeMaxPayload)
        throw std::runtime_error("serve: sample payload of " +
                                 std::to_string(n) + " bytes exceeds limit");
    req.sample_payload.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) req.sample_payload.push_back(r.u8());
    r.expect_done("serve request");
    if (req.op == ServeOp::Estimate && req.sample_payload.empty())
        throw std::runtime_error("serve: estimate request without a sample");
    return req;
}

std::vector<std::uint8_t> encode_serve_response(const ServeResponse& resp) {
    Writer w;
    w.u64(resp.id);
    w.u8(static_cast<std::uint8_t>(resp.op));
    w.u8(resp.status);
    w.str(resp.error);
    w.f64(resp.watts);
    w.f64(resp.member_spread);
    w.u64(resp.model_generation);
    w.u32(resp.model_members);
    return w.take();
}

ServeResponse decode_serve_response(const std::vector<std::uint8_t>& payload) {
    Reader r(payload);
    ServeResponse resp;
    resp.id = r.u64();
    const std::uint8_t op = r.u8();
    if (!serve_op_valid(op))
        throw std::runtime_error("serve: unknown response op " +
                                 std::to_string(op));
    resp.op = static_cast<ServeOp>(op);
    resp.status = r.u8();
    resp.error = r.str();
    resp.watts = r.f64();
    resp.member_spread = r.f64();
    resp.model_generation = r.u64();
    resp.model_members = r.u32();
    r.expect_done("serve response");
    return resp;
}

namespace {

/// Read exactly `n` bytes into `out`. Returns the byte count actually read:
/// n on success, 0 on EOF before the first byte, and anything in between on
/// a stream truncated mid-read. Throws on hard I/O errors.
std::size_t read_exact(int fd, std::uint8_t* out, std::size_t n) {
    std::size_t got = 0;
    while (got < n) {
        const ssize_t k = ::read(fd, out + got, n - got);
        if (k > 0) {
            got += static_cast<std::size_t>(k);
            continue;
        }
        if (k == 0) return got; // peer closed
        if (errno == EINTR) continue;
        if (errno == ECONNRESET) return got;
        throw std::runtime_error(std::string("serve: socket read failed: ") +
                                 std::strerror(errno));
    }
    return got;
}

} // namespace

bool send_frame(int fd, const std::vector<std::uint8_t>& framed) {
    std::size_t sent = 0;
    while (sent < framed.size()) {
        // MSG_NOSIGNAL: a vanished peer must surface as EPIPE, not SIGPIPE.
        const ssize_t k = ::send(fd, framed.data() + sent, framed.size() - sent,
                                 MSG_NOSIGNAL);
        if (k > 0) {
            sent += static_cast<std::size_t>(k);
            continue;
        }
        if (k < 0 && errno == EINTR) continue;
        if (k < 0 && (errno == EPIPE || errno == ECONNRESET)) return false;
        throw std::runtime_error(std::string("serve: socket write failed: ") +
                                 std::strerror(errno));
    }
    return true;
}

std::optional<std::vector<std::uint8_t>> recv_frame(int fd) {
    std::vector<std::uint8_t> frame(kHeaderSize);
    const std::size_t got = read_exact(fd, frame.data(), kHeaderSize);
    if (got == 0) return std::nullopt; // clean EOF between frames
    if (got < kHeaderSize)
        throw std::runtime_error("serve: stream truncated inside a frame "
                                 "header (" +
                                 std::to_string(got) + " of " +
                                 std::to_string(kHeaderSize) + " bytes)");
    const std::optional<ArtifactInfo> info =
        peek_header(frame.data(), frame.size());
    if (!info)
        throw std::runtime_error(
            "serve: malformed frame header (bad magic or container version)");
    if (info->payload_size > kServeMaxPayload)
        throw std::runtime_error("serve: frame payload of " +
                                 std::to_string(info->payload_size) +
                                 " bytes exceeds limit");
    frame.resize(kHeaderSize + static_cast<std::size_t>(info->payload_size));
    const std::size_t body = read_exact(
        fd, frame.data() + kHeaderSize,
        static_cast<std::size_t>(info->payload_size));
    if (body < info->payload_size)
        throw std::runtime_error("serve: stream truncated inside a frame "
                                 "payload (" +
                                 std::to_string(body) + " of " +
                                 std::to_string(info->payload_size) +
                                 " bytes)");
    return frame;
}

} // namespace powergear::io
