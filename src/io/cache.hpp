// Content-addressed pipeline cache.
//
// Each pipeline stage's output is stored as one powergear-art-v1 artifact
// under `<root>/<stage>/<16-hex-key>.art`, where the key is a FNV-1a hash
// (io::Hasher) of everything the stage's output depends on: container and
// payload format versions, kernel IR hash, stage options, and the upstream
// stage's artifact checksum. Re-running with identical inputs therefore
// resolves to the same file, and any input change (different pragma config,
// new stimulus seed, bumped payload schema) misses cleanly — there is no
// invalidation protocol, stale entries are simply never addressed again.
//
// The cache is advisory: lookups that find a missing, truncated or corrupt
// file report a miss (counted separately) and the caller recomputes, so a
// damaged cache can slow a run down but never change its results. Stores
// write a unique temp file and rename it into place, which makes concurrent
// stores of the same key from parallel workers benign.
//
// Hits, misses, stores and corrupt-file rejections are counted through
// src/obs under the "cache" phase and surface in `--metrics` reports; the
// CLI's `powergear cache {stats,clear}` operates on the same directory
// layout. A default-constructed (or empty-rooted) cache is disabled: every
// lookup misses silently and stores are dropped.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "io/artifact.hpp"

namespace powergear::io {

class Cache {
public:
    /// Disabled cache (all lookups miss, stores drop).
    Cache() = default;

    /// Cache rooted at `root`; empty = disabled. The directory tree is
    /// created lazily on first store.
    explicit Cache(std::string root) : root_(std::move(root)) {}

    /// Resolve the root from an explicit dir (wins) or the POWERGEAR_CACHE
    /// environment variable; both empty = disabled.
    static Cache resolve(const std::string& dir);

    bool enabled() const { return !root_.empty(); }
    const std::string& root() const { return root_; }

    /// File that would hold (stage, key).
    std::string path_of(const std::string& stage, std::uint64_t key) const;

    /// Validated payload lookup. Returns the artifact payload on a hit;
    /// nullopt on a miss. A file that exists but fails validation (wrong
    /// stage, version drift, checksum mismatch, truncation) is a miss and
    /// additionally bumps the "corrupt" counter.
    std::optional<std::vector<std::uint8_t>> load(
        const std::string& stage, std::uint64_t key,
        std::uint32_t payload_version) const;

    /// Header-only probe: the stored artifact's payload checksum, without
    /// reading or verifying the payload. Used to chain a downstream stage's
    /// key off the upstream artifact hash without materializing it.
    std::optional<std::uint64_t> peek_checksum(
        const std::string& stage, std::uint64_t key,
        std::uint32_t payload_version) const;

    /// Frame and persist a stage payload under its key (atomic rename).
    /// Returns the payload checksum (the downstream chaining hash).
    /// Disabled caches still return the checksum but write nothing.
    std::uint64_t store(const std::string& stage, std::uint64_t key,
                        std::uint32_t payload_version,
                        std::vector<std::uint8_t> payload) const;

    struct StageStats {
        std::string stage;
        std::uint64_t files = 0;
        std::uint64_t bytes = 0;
    };

    /// Per-stage entry counts and sizes (sorted by stage name).
    std::vector<StageStats> stats() const;

    /// Delete every cached artifact; returns the number of files removed.
    std::uint64_t clear() const;

    /// Path of a named (non-content-addressed) sidecar file inside a stage
    /// directory, creating the directory on the way. Used for coordination
    /// files that live next to the artifacts they govern — e.g. the DSE
    /// shard manifest (io::Manifest) under `<root>/dse/`. Throws
    /// std::runtime_error on a disabled cache.
    std::string sidecar_path(const std::string& stage,
                             const std::string& name) const;

private:
    std::string root_;
};

} // namespace powergear::io
