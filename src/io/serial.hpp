// Per-stage artifact codecs over the powergear-art-v1 container.
//
// One encode/decode pair per pipeline stage, matching the stage graph
// hls -> sim -> graphgen -> sample -> model (DESIGN.md §9):
//
//   stage tag   payload                                  upstream
//   "hls"       hls::Schedule + hls::HlsReport           kernel IR
//   "sim"       sim::Trace                               kernel IR
//   "graph"     graphgen::Graph                          hls + sim
//   "sample"    dataset::Sample (graph, features, labels) graph + board
//   "model"     gnn::Ensemble (configs + weights)        samples
//   "dse"       dse::Point frontier (shard artifacts)    samples
//
// encode_* produce raw little-endian payload bytes (hash those for content
// addressing); save_*_file frame them and write atomically; load_*_file
// validate the frame and decode. Decoders are strict: truncated payloads,
// trailing bytes, out-of-range indices and non-finite graph features all
// throw std::runtime_error with a message naming the defect. Round trips
// are bit-exact, including the float/double fields.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dataset/sample.hpp"
#include "dse/pareto.hpp"
#include "gnn/ensemble.hpp"
#include "hls/report.hpp"
#include "io/artifact.hpp"
#include "sim/interpreter.hpp"

namespace powergear::io {

// Stage tags (the 8-byte header field) and payload schema versions.
constexpr char kStageHls[] = "hls";
constexpr char kStageSim[] = "sim";
constexpr char kStageGraph[] = "graph";
constexpr char kStageSample[] = "sample";
constexpr char kStageModel[] = "model";
constexpr char kStageDse[] = "dse";

constexpr std::uint32_t kHlsPayloadVersion = 1;
constexpr std::uint32_t kSimPayloadVersion = 1;
constexpr std::uint32_t kGraphPayloadVersion = 1;
constexpr std::uint32_t kSamplePayloadVersion = 1;
constexpr std::uint32_t kModelPayloadVersion = 1;
constexpr std::uint32_t kDsePayloadVersion = 1;

// --- hls stage: schedule + report -------------------------------------------
std::vector<std::uint8_t> encode_hls(const hls::Schedule& sched,
                                     const hls::HlsReport& report);
void decode_hls(const std::vector<std::uint8_t>& payload, hls::Schedule& sched,
                hls::HlsReport& report);

// --- sim stage: value trace --------------------------------------------------
std::vector<std::uint8_t> encode_trace(const sim::Trace& trace);
sim::Trace decode_trace(const std::vector<std::uint8_t>& payload);

// --- graphgen stage: power graph --------------------------------------------
std::vector<std::uint8_t> encode_graph(const graphgen::Graph& g);
/// Rejects graphs that fail graphgen::Graph::valid (bad endpoints,
/// non-finite features), so NaN/inf can never enter via a crafted file.
graphgen::Graph decode_graph(const std::vector<std::uint8_t>& payload);

// --- sample stage: one design point -----------------------------------------
std::vector<std::uint8_t> encode_sample(const dataset::Sample& s);
/// Restores every stored field bit-exactly and rebuilds the NN tensor view
/// deterministically with gnn::GraphTensors::from (identical to the tensors
/// a cold run computes).
dataset::Sample decode_sample(const std::vector<std::uint8_t>& payload);

// --- model stage: trained ensemble ------------------------------------------
std::vector<std::uint8_t> encode_ensemble(const gnn::Ensemble& ensemble);
gnn::Ensemble decode_ensemble(const std::vector<std::uint8_t>& payload);

// --- dse stage: objective-space points (shard frontier artifacts) -----------
std::vector<std::uint8_t> encode_points(const std::vector<dse::Point>& pts);
/// Rejects non-finite objectives, so a crafted shard artifact can never
/// feed NaN/inf into the dominance order.
std::vector<dse::Point> decode_points(const std::vector<std::uint8_t>& payload);

// --- framed file conveniences ------------------------------------------------
void save_hls_file(const std::string& path, const hls::Schedule& sched,
                   const hls::HlsReport& report);
void load_hls_file(const std::string& path, hls::Schedule& sched,
                   hls::HlsReport& report);
void save_trace_file(const std::string& path, const sim::Trace& trace);
sim::Trace load_trace_file(const std::string& path);
void save_graph_file(const std::string& path, const graphgen::Graph& g);
graphgen::Graph load_graph_file(const std::string& path);
void save_sample_file(const std::string& path, const dataset::Sample& s);
dataset::Sample load_sample_file(const std::string& path);
void save_ensemble_file(const std::string& path, const gnn::Ensemble& e);
gnn::Ensemble load_ensemble_file(const std::string& path);

// --- content hashing ---------------------------------------------------------
/// FNV-1a over the kernel's printed IR: the upstream identity every stage
/// key chains from (two structurally identical kernels share it).
std::uint64_t hash_ir(const ir::Function& fn);

/// Content hash of a pool of samples (chained per-sample payload hashes, in
/// pool order). Keys the model stage on its exact training inputs.
std::uint64_t hash_samples(std::span<const dataset::Sample* const> samples);

} // namespace powergear::io
