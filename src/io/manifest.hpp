// Work-stealing manifest for sharded dataset generation.
//
// N worker processes sweep one design space into one content-addressed
// cache (src/io/cache). The manifest is how they divide the chunks without
// a coordinator: an append-only file of fixed-size records, one per claim
// or completion event. Appends use POSIX O_APPEND, which the kernel
// serializes for writes of this size, so the file is a total order of
// events; the owner of a chunk is the worker whose valid claim record
// appears first. A worker that loses the race simply moves on to the next
// chunk.
//
// Like the cache, the manifest is advisory and corruption-tolerant: every
// record carries a checksum, and a record that fails validation (torn
// write, byte corruption, truncated tail) is skipped — invisible, as if
// the claim never happened. The worst case is that two workers recompute
// the same chunk, which is benign: both produce bit-identical samples and
// the cache's atomic rename makes concurrent stores of the same key safe.
// Corruption can therefore only *remove* knowledge (done -> claimed ->
// unclaimed), never invent a completion or crash a reader — the fuzz suite
// in tests/test_io.cpp flips bytes and asserts exactly that monotonicity.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace powergear::io {

class Manifest {
public:
    enum class State : std::uint8_t { Unclaimed = 0, Claimed = 1, Done = 2 };

    static constexpr std::size_t kRecordSize = 40;

    /// Manifest backed by `path` (created on first append). `worker` is
    /// this process's 1-based worker id, stamped into its records.
    Manifest(std::string path, std::uint64_t worker);

    const std::string& path() const { return path_; }
    std::uint64_t worker() const { return worker_; }

    /// Append a claim for `chunk`, then re-read the file: returns true when
    /// this worker owns the chunk (its claim is the first valid one in file
    /// order — idempotent, re-claiming an owned chunk stays true). False
    /// means another worker won the race.
    bool claim(std::uint64_t chunk);

    /// Append a completion record for `chunk`.
    void complete(std::uint64_t chunk);

    /// Current state of one chunk (full rescan).
    State state(std::uint64_t chunk) const;
    /// First valid claimer of `chunk`, if any.
    std::optional<std::uint64_t> owner(std::uint64_t chunk) const;

    /// States of chunks [0, num_chunks) from a single scan.
    std::vector<State> snapshot(std::uint64_t num_chunks) const;

private:
    struct Event {
        std::uint64_t chunk = 0;
        std::uint64_t worker = 0;
        std::uint64_t kind = 0;
    };
    /// Every valid record, in file order; corrupt records are skipped.
    std::vector<Event> scan() const;
    void append(std::uint64_t chunk, std::uint64_t kind) const;

    std::string path_;
    std::uint64_t worker_ = 0;
};

} // namespace powergear::io
