#include "io/serial.hpp"

#include <cmath>
#include <stdexcept>

#include "ir/printer.hpp"

namespace powergear::io {

namespace {

/// Read a length prefix, sanity-bounded by the bytes actually remaining
/// (each element needs at least `min_bytes`): a corrupted count then fails
/// as "truncated payload" instead of attempting a multi-gigabyte resize.
std::size_t checked_count(Reader& r, std::size_t min_bytes, const char* what) {
    const std::uint64_t n = r.u64();
    if (min_bytes > 0 && n > r.remaining() / min_bytes)
        throw std::runtime_error(std::string("artifact: implausible ") + what +
                                 " count " + std::to_string(n) +
                                 " (truncated or corrupt payload)");
    return static_cast<std::size_t>(n);
}

void encode_directives(Writer& w, const hls::Directives& d) {
    w.u64(d.loops.size());
    for (const auto& [loop, ld] : d.loops) {
        w.i32(loop);
        w.i32(ld.unroll);
        w.u8(ld.pipeline ? 1 : 0);
    }
    w.u64(d.array_partition.size());
    for (const auto& [array, banks] : d.array_partition) {
        w.i32(array);
        w.i32(banks);
    }
}

hls::Directives decode_directives(Reader& r) {
    hls::Directives d;
    const std::size_t loops = checked_count(r, 9, "loop directive");
    for (std::size_t i = 0; i < loops; ++i) {
        const int loop = r.i32();
        hls::LoopDirective ld;
        ld.unroll = r.i32();
        ld.pipeline = r.u8() != 0;
        d.loops.emplace(loop, ld);
    }
    const std::size_t arrays = checked_count(r, 8, "array partition");
    for (std::size_t i = 0; i < arrays; ++i) {
        const int array = r.i32();
        d.array_partition.emplace(array, r.i32());
    }
    return d;
}

void encode_graph_into(Writer& w, const graphgen::Graph& g) {
    w.i32(g.num_nodes);
    w.i32(g.node_dim);
    w.u64(g.x.size());
    for (float v : g.x) w.f32(v);
    w.u64(g.edges.size());
    for (const graphgen::Graph::Edge& e : g.edges) {
        w.i32(e.src);
        w.i32(e.dst);
        w.i32(e.relation);
        for (float f : e.feat) w.f32(f);
    }
    w.u64(g.labels.size());
    for (const std::string& s : g.labels) w.str(s);
}

graphgen::Graph decode_graph_from(Reader& r) {
    graphgen::Graph g;
    g.num_nodes = r.i32();
    g.node_dim = r.i32();
    if (g.num_nodes < 0 || g.node_dim < 0)
        throw std::runtime_error("artifact: graph with negative dimensions");
    const std::size_t xn = checked_count(r, 4, "node feature");
    if (xn != static_cast<std::size_t>(g.num_nodes) *
                  static_cast<std::size_t>(g.node_dim))
        throw std::runtime_error(
            "artifact: graph feature count does not match num_nodes * node_dim");
    g.x.resize(xn);
    for (float& v : g.x) v = r.f32();
    const std::size_t en = checked_count(r, 12 + 4 * graphgen::Graph::kEdgeDim,
                                         "edge");
    g.edges.resize(en);
    for (graphgen::Graph::Edge& e : g.edges) {
        e.src = r.i32();
        e.dst = r.i32();
        e.relation = r.i32();
        if (e.relation < 0 || e.relation >= graphgen::Graph::kNumRelations)
            throw std::runtime_error("artifact: graph edge relation " +
                                     std::to_string(e.relation) +
                                     " out of range");
        for (float& f : e.feat) f = r.f32();
    }
    const std::size_t ln = checked_count(r, 8, "node label");
    g.labels.resize(ln);
    for (std::string& s : g.labels) s = r.str();
    // The structural validator also rejects NaN/inf features, closing the
    // door on non-finite values entering the NN via a crafted file.
    std::string why;
    if (!g.valid(&why))
        throw std::runtime_error("artifact: invalid graph payload: " + why);
    return g;
}

void encode_config(Writer& w, const gnn::ModelConfig& c) {
    w.u32(static_cast<std::uint32_t>(c.kind));
    w.i32(c.node_dim);
    w.i32(c.edge_dim);
    w.i32(c.metadata_dim);
    w.i32(c.hidden);
    w.i32(c.layers);
    w.f32(c.dropout);
    w.f64(c.learning_rate);
    w.u8(c.edge_features ? 1 : 0);
    w.u8(c.directed ? 1 : 0);
    w.u8(c.heterogeneous ? 1 : 0);
    w.u8(c.metadata ? 1 : 0);
    w.u8(c.jumping_knowledge ? 1 : 0);
    w.u64(c.seed);
}

gnn::ModelConfig decode_config(Reader& r) {
    gnn::ModelConfig c;
    const std::uint32_t kind = r.u32();
    if (kind > static_cast<std::uint32_t>(gnn::ConvKind::Gine))
        throw std::runtime_error("artifact: unknown conv kind " +
                                 std::to_string(kind));
    c.kind = static_cast<gnn::ConvKind>(kind);
    c.node_dim = r.i32();
    c.edge_dim = r.i32();
    c.metadata_dim = r.i32();
    c.hidden = r.i32();
    c.layers = r.i32();
    c.dropout = r.f32();
    c.learning_rate = r.f64();
    c.edge_features = r.u8() != 0;
    c.directed = r.u8() != 0;
    c.heterogeneous = r.u8() != 0;
    c.metadata = r.u8() != 0;
    c.jumping_knowledge = r.u8() != 0;
    c.seed = r.u64();
    if (c.node_dim <= 0 || c.hidden <= 0 || c.layers <= 0 ||
        c.metadata_dim < 0 || c.edge_dim < 0)
        throw std::runtime_error("artifact: model config with degenerate "
                                 "dimensions");
    return c;
}

} // namespace

// --- hls stage ---------------------------------------------------------------

std::vector<std::uint8_t> encode_hls(const hls::Schedule& sched,
                                     const hls::HlsReport& report) {
    Writer w;
    w.u64(sched.loops.size());
    for (const hls::LoopSchedule& ls : sched.loops) {
        w.i32(ls.loop);
        w.u8(ls.pipelined ? 1 : 0);
        w.i32(ls.ii);
        w.i32(ls.iteration_latency);
        w.i64(ls.total_latency);
        w.i32(ls.states);
    }
    w.u64(sched.op_cycle.size());
    for (int c : sched.op_cycle) w.i32(c);
    w.i64(sched.total_latency);
    w.i32(sched.fsm_states);

    w.i32(report.lut);
    w.i32(report.ff);
    w.i32(report.dsp);
    w.i32(report.bram);
    w.i64(report.latency_cycles);
    w.f64(report.clock_ns);
    w.i32(report.fsm_states);
    return w.take();
}

void decode_hls(const std::vector<std::uint8_t>& payload, hls::Schedule& sched,
                hls::HlsReport& report) {
    Reader r(payload);
    sched = hls::Schedule{};
    sched.loops.resize(checked_count(r, 21, "loop schedule"));
    for (hls::LoopSchedule& ls : sched.loops) {
        ls.loop = r.i32();
        ls.pipelined = r.u8() != 0;
        ls.ii = r.i32();
        ls.iteration_latency = r.i32();
        ls.total_latency = r.i64();
        ls.states = r.i32();
    }
    sched.op_cycle.resize(checked_count(r, 4, "op cycle"));
    for (int& c : sched.op_cycle) c = r.i32();
    sched.total_latency = r.i64();
    sched.fsm_states = r.i32();

    report = hls::HlsReport{};
    report.lut = r.i32();
    report.ff = r.i32();
    report.dsp = r.i32();
    report.bram = r.i32();
    report.latency_cycles = r.i64();
    report.clock_ns = r.f64();
    report.fsm_states = r.i32();
    r.expect_done("hls payload");
}

// --- sim stage ---------------------------------------------------------------

std::vector<std::uint8_t> encode_trace(const sim::Trace& trace) {
    Writer w;
    w.i64(trace.executed_ops);
    w.u64(trace.values.size());
    for (const std::vector<std::uint32_t>& stream : trace.values) {
        w.u64(stream.size());
        for (std::uint32_t v : stream) w.u32(v);
    }
    return w.take();
}

sim::Trace decode_trace(const std::vector<std::uint8_t>& payload) {
    Reader r(payload);
    sim::Trace t;
    t.executed_ops = r.i64();
    t.values.resize(checked_count(r, 8, "trace stream"));
    for (std::vector<std::uint32_t>& stream : t.values) {
        stream.resize(checked_count(r, 4, "trace value"));
        for (std::uint32_t& v : stream) v = r.u32();
    }
    r.expect_done("sim payload");
    return t;
}

// --- graphgen stage ----------------------------------------------------------

std::vector<std::uint8_t> encode_graph(const graphgen::Graph& g) {
    Writer w;
    encode_graph_into(w, g);
    return w.take();
}

graphgen::Graph decode_graph(const std::vector<std::uint8_t>& payload) {
    Reader r(payload);
    graphgen::Graph g = decode_graph_from(r);
    r.expect_done("graph payload");
    return g;
}

// --- sample stage ------------------------------------------------------------

std::vector<std::uint8_t> encode_sample(const dataset::Sample& s) {
    Writer w;
    w.str(s.kernel);
    w.u64(s.design_index);
    encode_directives(w, s.directives);
    encode_graph_into(w, s.graph);
    w.u64(s.metadata.size());
    for (double v : s.metadata) w.f64(v);
    w.u64(s.hlpow_feats.size());
    for (float v : s.hlpow_feats) w.f32(v);
    w.f64(s.total_power_w);
    w.f64(s.dynamic_power_w);
    w.f64(s.static_power_w);
    w.i64(s.latency_cycles);
    w.f64(s.vivado_total_raw);
    w.f64(s.vivado_dynamic_raw);
    w.f64(s.vivado_runtime_s);
    w.f64(s.powergear_runtime_s);
    return w.take();
}

dataset::Sample decode_sample(const std::vector<std::uint8_t>& payload) {
    Reader r(payload);
    dataset::Sample s;
    s.kernel = r.str();
    s.design_index = r.u64();
    s.directives = decode_directives(r);
    s.graph = decode_graph_from(r);
    s.metadata.resize(checked_count(r, 8, "metadata value"));
    for (double& v : s.metadata) v = r.f64();
    s.hlpow_feats.resize(checked_count(r, 4, "hlpow feature"));
    for (float& v : s.hlpow_feats) v = r.f32();
    s.total_power_w = r.f64();
    s.dynamic_power_w = r.f64();
    s.static_power_w = r.f64();
    s.latency_cycles = r.i64();
    s.vivado_total_raw = r.f64();
    s.vivado_dynamic_raw = r.f64();
    s.vivado_runtime_s = r.f64();
    s.powergear_runtime_s = r.f64();
    r.expect_done("sample payload");
    // The tensor view is a pure function of (graph, metadata); rebuilding it
    // here is bit-identical to what the cold path computes and keeps the
    // payload free of redundant derived data.
    s.tensors = gnn::GraphTensors::from(s.graph, s.metadata);
    return s;
}

// --- model stage -------------------------------------------------------------

std::vector<std::uint8_t> encode_ensemble(const gnn::Ensemble& ensemble) {
    Writer w;
    const std::vector<gnn::PowerModel*> members = ensemble.members();
    w.u64(members.size());
    for (gnn::PowerModel* m : members) {
        encode_config(w, m->config());
        const std::vector<nn::Param*> params = m->params();
        w.u64(params.size());
        for (nn::Param* p : params) {
            w.i32(p->w.rows());
            w.i32(p->w.cols());
            for (int row = 0; row < p->w.rows(); ++row)
                for (int col = 0; col < p->w.cols(); ++col)
                    w.f32(p->w.at(row, col));
        }
    }
    return w.take();
}

gnn::Ensemble decode_ensemble(const std::vector<std::uint8_t>& payload) {
    Reader r(payload);
    std::vector<std::unique_ptr<gnn::PowerModel>> members;
    const std::size_t count = checked_count(r, 40, "ensemble member");
    for (std::size_t i = 0; i < count; ++i) {
        const gnn::ModelConfig cfg = decode_config(r);
        auto model = std::make_unique<gnn::PowerModel>(cfg);
        const std::vector<nn::Param*> params = model->params();
        const std::size_t stored = checked_count(r, 8, "model parameter");
        if (stored != params.size())
            throw std::runtime_error(
                "artifact: model parameter count mismatch (stored " +
                std::to_string(stored) + ", architecture has " +
                std::to_string(params.size()) + ")");
        for (nn::Param* p : params) {
            const int rows = r.i32();
            const int cols = r.i32();
            if (rows != p->w.rows() || cols != p->w.cols())
                throw std::runtime_error(
                    "artifact: model parameter shape mismatch");
            for (int row = 0; row < rows; ++row)
                for (int col = 0; col < cols; ++col)
                    p->w.at(row, col) = r.f32();
        }
        members.push_back(std::move(model));
    }
    r.expect_done("model payload");
    gnn::Ensemble out;
    out.adopt(std::move(members));
    return out;
}

// --- dse stage: objective-space points ---------------------------------------

std::vector<std::uint8_t> encode_points(const std::vector<dse::Point>& pts) {
    Writer w;
    w.u64(pts.size());
    for (const dse::Point& p : pts) {
        w.f64(p.latency);
        w.f64(p.power);
        w.i64(p.index);
    }
    return w.take();
}

std::vector<dse::Point> decode_points(const std::vector<std::uint8_t>& payload) {
    Reader r(payload);
    const std::uint64_t n = r.u64();
    if (n > payload.size() / 24)
        throw std::runtime_error("artifact: dse point count exceeds payload");
    std::vector<dse::Point> pts;
    pts.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) {
        dse::Point p;
        p.latency = r.f64();
        p.power = r.f64();
        p.index = r.i64();
        if (!std::isfinite(p.latency) || !std::isfinite(p.power))
            throw std::runtime_error(
                "artifact: non-finite dse point objective");
        pts.push_back(p);
    }
    r.expect_done("dse payload");
    return pts;
}

// --- framed file conveniences ------------------------------------------------

namespace {

std::vector<std::uint8_t> load_payload(const std::string& path,
                                       const char* stage,
                                       std::uint32_t version) {
    std::optional<std::vector<std::uint8_t>> file = read_file(path);
    if (!file)
        throw std::runtime_error(std::string("artifact: cannot read ") + path);
    try {
        return unframe(*file, stage, version);
    } catch (const std::runtime_error& e) {
        throw std::runtime_error(std::string(e.what()) + " [" + path + "]");
    }
}

} // namespace

void save_hls_file(const std::string& path, const hls::Schedule& sched,
                   const hls::HlsReport& report) {
    write_file_atomic(path,
                      frame(kStageHls, kHlsPayloadVersion,
                            encode_hls(sched, report)));
}

void load_hls_file(const std::string& path, hls::Schedule& sched,
                   hls::HlsReport& report) {
    decode_hls(load_payload(path, kStageHls, kHlsPayloadVersion), sched,
               report);
}

void save_trace_file(const std::string& path, const sim::Trace& trace) {
    write_file_atomic(path,
                      frame(kStageSim, kSimPayloadVersion, encode_trace(trace)));
}

sim::Trace load_trace_file(const std::string& path) {
    return decode_trace(load_payload(path, kStageSim, kSimPayloadVersion));
}

void save_graph_file(const std::string& path, const graphgen::Graph& g) {
    write_file_atomic(path,
                      frame(kStageGraph, kGraphPayloadVersion, encode_graph(g)));
}

graphgen::Graph load_graph_file(const std::string& path) {
    return decode_graph(load_payload(path, kStageGraph, kGraphPayloadVersion));
}

void save_sample_file(const std::string& path, const dataset::Sample& s) {
    write_file_atomic(
        path, frame(kStageSample, kSamplePayloadVersion, encode_sample(s)));
}

dataset::Sample load_sample_file(const std::string& path) {
    return decode_sample(load_payload(path, kStageSample, kSamplePayloadVersion));
}

void save_ensemble_file(const std::string& path, const gnn::Ensemble& e) {
    write_file_atomic(
        path, frame(kStageModel, kModelPayloadVersion, encode_ensemble(e)));
}

gnn::Ensemble load_ensemble_file(const std::string& path) {
    return decode_ensemble(load_payload(path, kStageModel, kModelPayloadVersion));
}

// --- content hashing ---------------------------------------------------------

std::uint64_t hash_ir(const ir::Function& fn) {
    const std::string text = ir::to_string(fn);
    return fnv1a(text.data(), text.size());
}

std::uint64_t hash_samples(std::span<const dataset::Sample* const> samples) {
    Hasher h;
    h.feed(static_cast<std::uint64_t>(samples.size()));
    for (const dataset::Sample* s : samples) {
        const std::vector<std::uint8_t> payload = encode_sample(*s);
        h.feed(fnv1a(payload.data(), payload.size()));
    }
    return h.value();
}

} // namespace powergear::io
