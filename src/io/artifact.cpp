#include "io/artifact.hpp"

#include <unistd.h>

#include <atomic>
#include <bit>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <stdexcept>

namespace powergear::io {

namespace {

/// 8-byte file magic: ASCII "PGART" + NUL + "v1".
constexpr std::uint8_t kMagic[8] = {'P', 'G', 'A', 'R', 'T', 0, 'v', '1'};
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
    out.push_back(static_cast<std::uint8_t>(v));
    out.push_back(static_cast<std::uint8_t>(v >> 8));
    out.push_back(static_cast<std::uint8_t>(v >> 16));
    out.push_back(static_cast<std::uint8_t>(v >> 24));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t get_u32(const std::uint8_t* p) {
    return static_cast<std::uint32_t>(p[0]) |
           (static_cast<std::uint32_t>(p[1]) << 8) |
           (static_cast<std::uint32_t>(p[2]) << 16) |
           (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t get_u64(const std::uint8_t* p) {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

/// Header layout (offsets in bytes):
///   0  magic[8]
///   8  stage[8]            zero-padded ASCII tag
///  16  container version   u32
///  20  payload version     u32
///  24  payload size        u64
///  32  payload checksum    u64 (FNV-1a)
std::optional<ArtifactInfo> parse_header(const std::uint8_t* p, std::size_t n) {
    if (n < kHeaderSize) return std::nullopt;
    if (std::memcmp(p, kMagic, sizeof kMagic) != 0) return std::nullopt;
    ArtifactInfo info;
    const char* stage = reinterpret_cast<const char*>(p + 8);
    info.stage.assign(stage, strnlen(stage, 8));
    if (get_u32(p + 16) != kArtifactVersion) return std::nullopt;
    info.payload_version = get_u32(p + 20);
    info.payload_size = get_u64(p + 24);
    info.checksum = get_u64(p + 32);
    return info;
}

} // namespace

bool is_artifact_magic(const void* data, std::size_t n) {
    return n >= sizeof kMagic && std::memcmp(data, kMagic, sizeof kMagic) == 0;
}

std::uint64_t fnv1a(const void* data, std::size_t n, std::uint64_t seed) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    std::uint64_t h = seed;
    for (std::size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= kFnvPrime;
    }
    return h;
}

Hasher& Hasher::feed(std::uint64_t v) {
    std::uint8_t buf[9] = {1};
    for (int i = 0; i < 8; ++i) buf[1 + i] = static_cast<std::uint8_t>(v >> (8 * i));
    h_ = fnv1a(buf, sizeof buf, h_);
    return *this;
}

Hasher& Hasher::feed(double v) {
    std::uint8_t buf[9] = {2};
    const std::uint64_t bits = std::bit_cast<std::uint64_t>(v);
    for (int i = 0; i < 8; ++i)
        buf[1 + i] = static_cast<std::uint8_t>(bits >> (8 * i));
    h_ = fnv1a(buf, sizeof buf, h_);
    return *this;
}

Hasher& Hasher::feed(const std::string& s) {
    const std::uint8_t tag = 3;
    h_ = fnv1a(&tag, 1, h_);
    h_ = fnv1a(s.data(), s.size(), h_);
    // Length terminates the stream so feed("ab")+feed("c") != feed("abc").
    return feed(static_cast<std::uint64_t>(s.size()));
}

void Writer::u32(std::uint32_t v) { put_u32(bytes_, v); }
void Writer::u64(std::uint64_t v) { put_u64(bytes_, v); }
void Writer::f32(float v) { u32(std::bit_cast<std::uint32_t>(v)); }
void Writer::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void Writer::str(const std::string& s) {
    u64(s.size());
    bytes_.insert(bytes_.end(), s.begin(), s.end());
}

void Reader::need(std::size_t n) const {
    if (size_ - pos_ < n)
        throw std::runtime_error("artifact: truncated payload (need " +
                                 std::to_string(n) + " bytes, have " +
                                 std::to_string(size_ - pos_) + ")");
}

std::uint8_t Reader::u8() {
    need(1);
    return data_[pos_++];
}

std::uint32_t Reader::u32() {
    need(4);
    const std::uint32_t v = get_u32(data_ + pos_);
    pos_ += 4;
    return v;
}

std::uint64_t Reader::u64() {
    need(8);
    const std::uint64_t v = get_u64(data_ + pos_);
    pos_ += 8;
    return v;
}

float Reader::f32() { return std::bit_cast<float>(u32()); }
double Reader::f64() { return std::bit_cast<double>(u64()); }

std::string Reader::str() {
    const std::uint64_t n = u64();
    need(n);
    std::string s(reinterpret_cast<const char*>(data_ + pos_),
                  static_cast<std::size_t>(n));
    pos_ += static_cast<std::size_t>(n);
    return s;
}

void Reader::expect_done(const char* what) const {
    if (!done())
        throw std::runtime_error(std::string("artifact: ") + what + ": " +
                                 std::to_string(remaining()) +
                                 " trailing bytes after payload");
}

std::vector<std::uint8_t> frame(const std::string& stage,
                                std::uint32_t payload_version,
                                std::vector<std::uint8_t> payload) {
    if (stage.empty() || stage.size() > 8)
        throw std::invalid_argument("artifact: stage tag must be 1-8 bytes");
    std::vector<std::uint8_t> out;
    out.reserve(kHeaderSize + payload.size());
    // Element-wise (not insert(range)): GCC 12's -Wstringop-overflow flags
    // the range insert from a constexpr array as a false positive.
    for (const std::uint8_t b : kMagic) out.push_back(b);
    for (std::size_t i = 0; i < 8; ++i)
        out.push_back(i < stage.size() ? static_cast<std::uint8_t>(stage[i]) : 0);
    put_u32(out, kArtifactVersion);
    put_u32(out, payload_version);
    put_u64(out, payload.size());
    put_u64(out, fnv1a(payload.data(), payload.size()));
    out.insert(out.end(), payload.begin(), payload.end());
    return out;
}

std::vector<std::uint8_t> unframe(const std::vector<std::uint8_t>& file,
                                  const std::string& expected_stage,
                                  std::uint32_t expected_payload_version,
                                  ArtifactInfo* info_out) {
    if (file.size() < kHeaderSize)
        throw std::runtime_error("artifact: file shorter than the " +
                                 std::to_string(kHeaderSize) + "-byte header");
    if (std::memcmp(file.data(), kMagic, sizeof kMagic) != 0)
        throw std::runtime_error(
            "artifact: bad magic (not a powergear-art-v1 file)");
    const std::optional<ArtifactInfo> info =
        parse_header(file.data(), file.size());
    if (!info)
        throw std::runtime_error("artifact: unsupported container version");
    if (info->stage != expected_stage)
        throw std::runtime_error("artifact: stage mismatch: expected '" +
                                 expected_stage + "', found '" + info->stage +
                                 "'");
    // The stage tag is zero-padded to 8 bytes; bytes past the tag's NUL are
    // invisible to the strnlen-based parse above, so reject them explicitly —
    // a corrupted header must never load successfully.
    for (std::size_t i = 8 + info->stage.size(); i < 16; ++i)
        if (file[i] != 0)
            throw std::runtime_error(
                "artifact: nonzero padding in stage tag (corrupt header)");
    if (info->payload_version != expected_payload_version)
        throw std::runtime_error(
            "artifact: " + expected_stage + " payload version " +
            std::to_string(info->payload_version) + " unsupported (want " +
            std::to_string(expected_payload_version) + ")");
    if (file.size() - kHeaderSize != info->payload_size)
        throw std::runtime_error(
            "artifact: payload size mismatch (header says " +
            std::to_string(info->payload_size) + " bytes, file holds " +
            std::to_string(file.size() - kHeaderSize) + ")");
    std::vector<std::uint8_t> payload(file.begin() + kHeaderSize, file.end());
    if (fnv1a(payload.data(), payload.size()) != info->checksum)
        throw std::runtime_error(
            "artifact: checksum mismatch (corrupt " + expected_stage +
            " payload)");
    if (info_out) *info_out = *info;
    return payload;
}

std::optional<ArtifactInfo> peek_header(const void* data, std::size_t n) {
    return parse_header(static_cast<const std::uint8_t*>(data), n);
}

std::optional<ArtifactInfo> peek_file(const std::string& path) {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (!f) return std::nullopt;
    std::uint8_t buf[kHeaderSize];
    const std::size_t n = std::fread(buf, 1, sizeof buf, f);
    std::fclose(f);
    return parse_header(buf, n);
}

std::optional<std::vector<std::uint8_t>> read_file(const std::string& path) {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (!f) return std::nullopt;
    std::vector<std::uint8_t> out;
    std::uint8_t buf[1 << 16];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
        out.insert(out.end(), buf, buf + n);
    const bool bad = std::ferror(f) != 0;
    std::fclose(f);
    if (bad) return std::nullopt;
    return out;
}

void write_file_atomic(const std::string& path,
                       const std::vector<std::uint8_t>& bytes) {
    // Unique temp name per writer so concurrent stores of one key never
    // interleave; rename() then publishes a complete file or nothing.
    static std::atomic<std::uint64_t> counter{0};
    const std::string tmp =
        path + ".tmp." + std::to_string(counter.fetch_add(1)) + "." +
        std::to_string(static_cast<std::uint64_t>(::getpid()));
    std::FILE* f = std::fopen(tmp.c_str(), "wb");
    if (!f) throw std::runtime_error("artifact: cannot open for writing: " + tmp);
    const std::size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
    const bool flushed = std::fclose(f) == 0;
    if (written != bytes.size() || !flushed) {
        std::remove(tmp.c_str());
        throw std::runtime_error("artifact: write failed: " + tmp);
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        std::remove(tmp.c_str());
        throw std::runtime_error("artifact: cannot rename " + tmp + " -> " +
                                 path + ": " + ec.message());
    }
}

} // namespace powergear::io
