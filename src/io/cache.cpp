#include "io/cache.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <stdexcept>
#include <system_error>

#include "obs/obs.hpp"
#include "util/env.hpp"

namespace fs = std::filesystem;

namespace powergear::io {

namespace {

std::string hex_key(std::uint64_t key) {
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(key));
    return buf;
}

} // namespace

Cache Cache::resolve(const std::string& dir) {
    if (!dir.empty()) return Cache(dir);
    return Cache(util::env_string("POWERGEAR_CACHE", ""));
}

std::string Cache::path_of(const std::string& stage, std::uint64_t key) const {
    return root_ + "/" + stage + "/" + hex_key(key) + ".art";
}

std::optional<std::vector<std::uint8_t>> Cache::load(
    const std::string& stage, std::uint64_t key,
    std::uint32_t payload_version) const {
    if (!enabled()) return std::nullopt;
    std::optional<std::vector<std::uint8_t>> file =
        read_file(path_of(stage, key));
    if (!file) {
        obs::add(obs::Phase::Cache, "misses");
        return std::nullopt;
    }
    try {
        std::vector<std::uint8_t> payload =
            unframe(*file, stage, payload_version);
        obs::add(obs::Phase::Cache, "hits");
        return payload;
    } catch (const std::runtime_error&) {
        // A damaged cache entry must never fail the run: count it and let
        // the caller recompute (the store below will overwrite it).
        obs::add(obs::Phase::Cache, "corrupt");
        obs::add(obs::Phase::Cache, "misses");
        return std::nullopt;
    }
}

std::optional<std::uint64_t> Cache::peek_checksum(
    const std::string& stage, std::uint64_t key,
    std::uint32_t payload_version) const {
    if (!enabled()) return std::nullopt;
    const std::optional<ArtifactInfo> info = peek_file(path_of(stage, key));
    if (!info || info->stage != stage ||
        info->payload_version != payload_version) {
        obs::add(obs::Phase::Cache, "misses");
        return std::nullopt;
    }
    obs::add(obs::Phase::Cache, "hits");
    return info->checksum;
}

std::uint64_t Cache::store(const std::string& stage, std::uint64_t key,
                           std::uint32_t payload_version,
                           std::vector<std::uint8_t> payload) const {
    const std::uint64_t checksum = fnv1a(payload.data(), payload.size());
    if (!enabled()) return checksum;
    std::error_code ec;
    fs::create_directories(fs::path(root_) / stage, ec);
    if (ec) return checksum; // unwritable cache degrades to a no-op
    try {
        write_file_atomic(path_of(stage, key),
                          frame(stage, payload_version, std::move(payload)));
        obs::add(obs::Phase::Cache, "stores");
    } catch (const std::runtime_error&) {
        // Disk-full or permission trouble: the run proceeds uncached.
    }
    return checksum;
}

std::string Cache::sidecar_path(const std::string& stage,
                                const std::string& name) const {
    if (!enabled())
        throw std::runtime_error(
            "cache: sidecar_path requires an enabled cache (set --cache-dir "
            "or POWERGEAR_CACHE)");
    std::error_code ec;
    fs::create_directories(fs::path(root_) / stage, ec);
    if (ec)
        throw std::runtime_error("cache: cannot create " + root_ + "/" +
                                 stage + ": " + ec.message());
    return root_ + "/" + stage + "/" + name;
}

std::vector<Cache::StageStats> Cache::stats() const {
    std::vector<StageStats> out;
    if (!enabled()) return out;
    std::error_code ec;
    for (const fs::directory_entry& stage_dir :
         fs::directory_iterator(root_, ec)) {
        if (!stage_dir.is_directory()) continue;
        StageStats s;
        s.stage = stage_dir.path().filename().string();
        std::error_code ec2;
        for (const fs::directory_entry& f :
             fs::directory_iterator(stage_dir.path(), ec2)) {
            if (!f.is_regular_file() || f.path().extension() != ".art")
                continue;
            ++s.files;
            s.bytes += static_cast<std::uint64_t>(f.file_size());
        }
        out.push_back(std::move(s));
    }
    std::sort(out.begin(), out.end(),
              [](const StageStats& a, const StageStats& b) {
                  return a.stage < b.stage;
              });
    return out;
}

std::uint64_t Cache::clear() const {
    std::uint64_t removed = 0;
    if (!enabled()) return removed;
    std::error_code ec;
    for (const fs::directory_entry& stage_dir :
         fs::directory_iterator(root_, ec)) {
        if (!stage_dir.is_directory()) continue;
        std::error_code ec2;
        for (const fs::directory_entry& f :
             fs::directory_iterator(stage_dir.path(), ec2)) {
            if (!f.is_regular_file() || f.path().extension() != ".art")
                continue;
            std::error_code ec3;
            if (fs::remove(f.path(), ec3)) ++removed;
        }
    }
    return removed;
}

} // namespace powergear::io
