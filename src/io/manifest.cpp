#include "io/manifest.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <stdexcept>

#include "io/artifact.hpp"
#include "obs/obs.hpp"

namespace powergear::io {

namespace {

constexpr std::uint64_t kManifestMagic = 0x70676d66'73743031ULL; // "pgmfst01"
constexpr std::uint64_t kKindClaim = 1;
constexpr std::uint64_t kKindDone = 2;

std::vector<std::uint8_t> encode_record(std::uint64_t chunk,
                                        std::uint64_t worker,
                                        std::uint64_t kind) {
    Writer w;
    w.u64(kManifestMagic);
    w.u64(chunk);
    w.u64(worker);
    w.u64(kind);
    w.u64(fnv1a(w.bytes().data(), w.bytes().size()));
    return w.take();
}

} // namespace

Manifest::Manifest(std::string path, std::uint64_t worker)
    : path_(std::move(path)), worker_(worker) {
    if (path_.empty())
        throw std::invalid_argument("Manifest: empty path");
}

void Manifest::append(std::uint64_t chunk, std::uint64_t kind) const {
    const std::vector<std::uint8_t> rec = encode_record(chunk, worker_, kind);
    // O_APPEND: the kernel serializes position+write atomically, so records
    // from racing workers interleave at record granularity, never byte
    // granularity (40 bytes is far below the PIPE_BUF-style atomicity
    // limits of regular-file appends on every platform we target).
    const int fd = ::open(path_.c_str(), O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC,
                          0644);
    if (fd < 0)
        throw std::runtime_error("manifest: cannot open " + path_ + ": " +
                                 std::strerror(errno));
    const ssize_t n = ::write(fd, rec.data(), rec.size());
    const int saved = errno;
    ::close(fd);
    if (n != static_cast<ssize_t>(rec.size()))
        throw std::runtime_error("manifest: short write to " + path_ + ": " +
                                 std::strerror(saved));
}

std::vector<Manifest::Event> Manifest::scan() const {
    std::vector<Event> events;
    std::ifstream in(path_, std::ios::binary);
    if (!in) return events; // no manifest yet: everything unclaimed
    std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                    std::istreambuf_iterator<char>());
    // Fixed-size records keep the scan self-synchronizing: a corrupt record
    // cannot shift the framing of its neighbours. A truncated tail (torn
    // final write) is simply ignored.
    for (std::size_t off = 0; off + kRecordSize <= bytes.size();
         off += kRecordSize) {
        Reader r(bytes.data() + off, kRecordSize);
        const std::uint64_t magic = r.u64();
        const std::uint64_t chunk = r.u64();
        const std::uint64_t worker = r.u64();
        const std::uint64_t kind = r.u64();
        const std::uint64_t sum = r.u64();
        if (magic != kManifestMagic ||
            sum != fnv1a(bytes.data() + off, kRecordSize - 8) ||
            (kind != kKindClaim && kind != kKindDone)) {
            // Corrupt-entry=miss: the event becomes invisible and the chunk
            // degrades toward recomputation, mirroring the cache contract.
            obs::add(obs::Phase::Dse, "manifest_corrupt");
            continue;
        }
        events.push_back(Event{chunk, worker, kind});
    }
    return events;
}

bool Manifest::claim(std::uint64_t chunk) {
    append(chunk, kKindClaim);
    const std::optional<std::uint64_t> who = owner(chunk);
    return who && *who == worker_;
}

void Manifest::complete(std::uint64_t chunk) { append(chunk, kKindDone); }

std::optional<std::uint64_t> Manifest::owner(std::uint64_t chunk) const {
    for (const Event& e : scan())
        if (e.chunk == chunk && e.kind == kKindClaim) return e.worker;
    return std::nullopt;
}

Manifest::State Manifest::state(std::uint64_t chunk) const {
    State s = State::Unclaimed;
    for (const Event& e : scan()) {
        if (e.chunk != chunk) continue;
        if (e.kind == kKindDone) return State::Done;
        s = State::Claimed;
    }
    return s;
}

std::vector<Manifest::State> Manifest::snapshot(
    std::uint64_t num_chunks) const {
    std::vector<State> states(static_cast<std::size_t>(num_chunks),
                              State::Unclaimed);
    for (const Event& e : scan()) {
        if (e.chunk >= num_chunks) continue;
        auto& s = states[static_cast<std::size_t>(e.chunk)];
        if (e.kind == kKindDone)
            s = State::Done;
        else if (s == State::Unclaimed)
            s = State::Claimed;
    }
    return states;
}

} // namespace powergear::io
