// Serve wire protocol: request/response codecs over powergear-art-v1 frames.
//
// The estimation daemon (core/serve) and its clients exchange a stream of
// framed artifacts on a Unix-domain socket — the exact container every
// pipeline stage persists through (io/artifact), with two new stage tags:
//
//   stage tag   payload                         direction
//   "req"       ServeRequest  (op + sample)     client -> server
//   "resp"      ServeResponse (estimate/info)   server -> client
//
// Reusing the container buys the protocol everything files already have:
// magic + stage + version negotiation, a payload length (so frames can be
// read off a byte stream without any extra length prefix) and an FNV-1a
// checksum that rejects corrupt or torn frames before decoding. A malformed
// frame therefore fails with the same six diagnostics the artifact loaders
// emit (short header, bad magic, stage mismatch, version mismatch, size
// mismatch, checksum mismatch).
//
// An Estimate request carries one encoded dataset::Sample (the "sample"
// stage payload bytes, io::encode_sample); the admission queue coalesces
// many concurrent requests into one PowerGear::estimate_batch call — one
// fused block-diagonal forward per chunk of up to gnn::kBatchChunk samples
// (gnn/batch.hpp) — so a client wanting batch semantics simply pipelines N
// requests and reads N responses (matched by id — control responses may
// interleave). Coalescing never changes a result: per-sample answers are
// independent of batch composition (DESIGN.md §13).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "io/artifact.hpp"

namespace powergear::io {

// Stage tags and payload schema versions of the serve wire protocol.
constexpr char kStageServeReq[] = "req";
constexpr char kStageServeResp[] = "resp";
constexpr std::uint32_t kServeReqVersion = 1;
constexpr std::uint32_t kServeRespVersion = 1;

/// Upper bound on a single frame's payload accepted off a socket. Graph
/// samples are a few hundred KB at paper scale; anything near this limit is
/// a protocol error, not a workload.
constexpr std::uint64_t kServeMaxPayload = 64ull << 20;

/// Request operations.
enum class ServeOp : std::uint8_t {
    Estimate = 1, ///< estimate one sample (coalesced into batches)
    Ping = 2,     ///< liveness + model info (generation, member count)
    Reload = 3,   ///< hot-swap the model from the server's artifact path
    Shutdown = 4, ///< drain in-flight requests, then exit cleanly
};

/// True when `op` is one of the defined operations (decode guard).
bool serve_op_valid(std::uint8_t op);

struct ServeRequest {
    std::uint64_t id = 0; ///< client-chosen correlation id, echoed back
    ServeOp op = ServeOp::Ping;
    /// Estimate only: the "sample" stage payload bytes (io::encode_sample).
    std::vector<std::uint8_t> sample_payload;
};

struct ServeResponse {
    std::uint64_t id = 0;  ///< echo of the request id
    ServeOp op = ServeOp::Ping;
    std::uint8_t status = 0; ///< 0 = ok, 1 = error (see `error`)
    std::string error;       ///< diagnostic when status != 0

    // Estimate results (op == Estimate, status == 0).
    double watts = 0.0;
    double member_spread = 0.0;

    /// Model generation that produced this answer: 1 for the initially
    /// loaded artifact, +1 per completed hot-swap. Lets clients observe
    /// that a reload boundary is atomic.
    std::uint64_t model_generation = 0;
    std::uint32_t model_members = 0; ///< ensemble size (Ping/Reload)
};

// --- payload codecs ----------------------------------------------------------
std::vector<std::uint8_t> encode_serve_request(const ServeRequest& req);
/// Strict decode: throws std::runtime_error on unknown op, truncated or
/// trailing bytes, or an Estimate request without a sample payload.
ServeRequest decode_serve_request(const std::vector<std::uint8_t>& payload);

std::vector<std::uint8_t> encode_serve_response(const ServeResponse& resp);
ServeResponse decode_serve_response(const std::vector<std::uint8_t>& payload);

// --- framed socket transport -------------------------------------------------
/// Write a full framed artifact to `fd`, retrying short writes. Returns
/// false when the peer is gone (EPIPE/ECONNRESET); throws on other errors.
bool send_frame(int fd, const std::vector<std::uint8_t>& framed);

/// Read one framed artifact off `fd`: header first (its payload length
/// bounds the read), then the payload. Returns nullopt on clean EOF before
/// any byte of a frame; throws std::runtime_error on a malformed header,
/// an oversized payload, or a stream truncated mid-frame. The returned
/// bytes are a complete frame — validate with io::unframe as usual.
std::optional<std::vector<std::uint8_t>> recv_frame(int fd);

} // namespace powergear::io
