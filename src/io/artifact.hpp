// powergear-art-v1: the single binary artifact container every pipeline
// stage persists through.
//
// A framed artifact is [header | payload]. The 40-byte header carries a
// magic, the container format version, an 8-byte stage tag ("hls", "sim",
// "graph", "sample", "model"), a per-stage payload schema version, the
// payload size and a FNV-1a checksum of the payload bytes. Readers verify
// all five before touching the payload, so a truncated, corrupt or
// mis-staged file fails loudly with a diagnostic instead of decoding into
// garbage. All multi-byte fields are written little-endian byte by byte and
// floats as IEEE-754 bit patterns, so files are bit-identical across
// machines and round trips are bit-exact.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace powergear::io {

/// Container format name, printed by `powergear --version` and documented
/// in DESIGN.md §9.
constexpr char kArtifactFormatName[] = "powergear-art-v1";

/// Container format version (the "v1" in powergear-art-v1).
constexpr std::uint32_t kArtifactVersion = 1;

/// 64-bit FNV-1a over a byte range, optionally chained from a prior hash.
std::uint64_t fnv1a(const void* data, std::size_t n,
                    std::uint64_t seed = 0xcbf29ce484222325ull);

/// Incremental FNV-1a hasher for deriving cache keys from typed fields.
/// Every feed mixes a type-tag byte first, so feed(1u64) and feed("\x01")
/// land on different keys.
class Hasher {
public:
    Hasher& feed(std::uint64_t v);
    Hasher& feed(std::int64_t v) { return feed(static_cast<std::uint64_t>(v)); }
    Hasher& feed(int v) { return feed(static_cast<std::uint64_t>(static_cast<std::int64_t>(v))); }
    Hasher& feed(bool v) { return feed(static_cast<std::uint64_t>(v ? 1 : 0)); }
    Hasher& feed(double v); ///< hashes the IEEE-754 bit pattern
    Hasher& feed(const std::string& s);
    std::uint64_t value() const { return h_; }

private:
    std::uint64_t h_ = 0xcbf29ce484222325ull;
};

/// Little-endian payload builder. Primitives append to an owned byte
/// vector; floats are stored as bit patterns (bit-exact round trips).
class Writer {
public:
    void u8(std::uint8_t v) { bytes_.push_back(v); }
    void u32(std::uint32_t v);
    void u64(std::uint64_t v);
    void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
    void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
    void f32(float v);
    void f64(double v);
    void str(const std::string& s); ///< u64 length + raw bytes

    const std::vector<std::uint8_t>& bytes() const { return bytes_; }
    std::vector<std::uint8_t> take() { return std::move(bytes_); }

private:
    std::vector<std::uint8_t> bytes_;
};

/// Bounds-checked little-endian payload reader. Every read validates the
/// remaining size and throws std::runtime_error("artifact: truncated ...")
/// on overrun, so short files cannot be silently decoded.
class Reader {
public:
    Reader(const std::uint8_t* data, std::size_t size)
        : data_(data), size_(size) {}
    explicit Reader(const std::vector<std::uint8_t>& bytes)
        : Reader(bytes.data(), bytes.size()) {}

    std::uint8_t u8();
    std::uint32_t u32();
    std::uint64_t u64();
    std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
    std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
    float f32();
    double f64();
    std::string str();

    std::size_t remaining() const { return size_ - pos_; }
    bool done() const { return pos_ == size_; }
    /// Throw unless the whole payload was consumed (schema drift guard).
    void expect_done(const char* what) const;

private:
    void need(std::size_t n) const;

    const std::uint8_t* data_;
    std::size_t size_;
    std::size_t pos_ = 0;
};

/// Parsed artifact header.
struct ArtifactInfo {
    std::string stage;             ///< stage tag, e.g. "sample"
    std::uint32_t payload_version = 0;
    std::uint64_t payload_size = 0;
    std::uint64_t checksum = 0;    ///< FNV-1a of the payload bytes
};

/// Size in bytes of the fixed artifact header.
constexpr std::size_t kHeaderSize = 40;

/// True when `data` begins with the powergear-art-v1 magic. Format sniffing
/// for readers that also accept legacy (pre-artifact) files.
bool is_artifact_magic(const void* data, std::size_t n);

/// Frame a payload: prepend the powergear-art-v1 header (stage tag at most
/// 8 ASCII bytes, zero padded) with the payload's checksum.
std::vector<std::uint8_t> frame(const std::string& stage,
                                std::uint32_t payload_version,
                                std::vector<std::uint8_t> payload);

/// Validate a framed artifact and return its payload. Throws
/// std::runtime_error naming the failure (bad magic, container-version or
/// stage mismatch, payload-version mismatch, size mismatch, checksum
/// mismatch). `info_out`, when given, receives the parsed header.
std::vector<std::uint8_t> unframe(const std::vector<std::uint8_t>& file,
                                  const std::string& expected_stage,
                                  std::uint32_t expected_payload_version,
                                  ArtifactInfo* info_out = nullptr);

/// Parse just the header of a framed artifact file on disk — no payload
/// read, no checksum verification. Returns nullopt when the file is absent,
/// shorter than a header, or not a powergear artifact.
std::optional<ArtifactInfo> peek_file(const std::string& path);

/// Parse an in-memory header prefix (the first kHeaderSize bytes of a frame)
/// without touching any payload. Returns nullopt on short input, bad magic
/// or container-version mismatch. The wire transport (io/wire) uses this to
/// learn the payload length before reading it off a socket.
std::optional<ArtifactInfo> peek_header(const void* data, std::size_t n);

/// Whole-file helpers. read_file returns nullopt when the file cannot be
/// opened; write_file_atomic writes to a unique temp name in the target
/// directory and renames into place (concurrent writers of the same path
/// race benignly: one complete file wins). Throws on I/O failure.
std::optional<std::vector<std::uint8_t>> read_file(const std::string& path);
void write_file_atomic(const std::string& path,
                       const std::vector<std::uint8_t>& bytes);

} // namespace powergear::io
