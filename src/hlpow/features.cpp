#include "hlpow/features.hpp"

#include <algorithm>
#include <cmath>

namespace powergear::hlpow {

int feature_dim(int metadata_dim) {
    return ir::opcode_count() * kBinsPerOpcode + metadata_dim;
}

std::vector<float> hlpow_features(const hls::ElabGraph& elab,
                                  const sim::ActivityOracle& oracle,
                                  const std::vector<double>& metadata) {
    std::vector<float> feats(
        static_cast<std::size_t>(feature_dim(static_cast<int>(metadata.size()))),
        0.0f);

    // Activity histograms: log1p(SA) binned over [0, 3.5).
    constexpr double kRange = 3.5;
    for (int o = 0; o < elab.num_ops(); ++o) {
        const hls::ElabOp& op = elab.ops[static_cast<std::size_t>(o)];
        if (op.op == ir::Opcode::Ret) continue;
        const double sa = std::log1p(std::max(0.0, oracle.produced(o).sa));
        int bin = static_cast<int>(sa / kRange * kBinsPerOpcode);
        bin = std::clamp(bin, 0, kBinsPerOpcode - 1);
        feats[static_cast<std::size_t>(static_cast<int>(op.op) * kBinsPerOpcode +
                                       bin)] += 1.0f;
    }

    const std::size_t meta_base =
        static_cast<std::size_t>(ir::opcode_count() * kBinsPerOpcode);
    for (std::size_t i = 0; i < metadata.size(); ++i)
        feats[meta_base + i] =
            static_cast<float>(std::log1p(std::max(0.0, metadata[i])));
    return feats;
}

} // namespace powergear::hlpow
