// HL-Pow feature construction (Lin et al., ASP-DAC 2020 — the paper's
// state-of-the-art baseline). HL-Pow aligns features across designs by
// encoding the activities of each HLS operation type into a per-type
// histogram, concatenating histograms, and appending global design metadata.
// Crucially it has no notion of interconnect structure — the deficiency
// PowerGear's graphs address.
#pragma once

#include <vector>

#include "hls/elaborate.hpp"
#include "sim/activity.hpp"

namespace powergear::hlpow {

/// Histogram bins per operation type.
constexpr int kBinsPerOpcode = 8;

/// Feature dimensionality given the metadata width.
int feature_dim(int metadata_dim);

/// Build the HL-Pow feature vector: per-opcode histograms of operator
/// switching activities (log1p-scaled, fixed bin range) + metadata.
std::vector<float> hlpow_features(const hls::ElabGraph& elab,
                                  const sim::ActivityOracle& oracle,
                                  const std::vector<double>& metadata);

} // namespace powergear::hlpow
