#include "hlpow/hlpow.hpp"

#include <cmath>
#include <stdexcept>

namespace powergear::hlpow {

void HlPowModel::fit(const std::vector<std::vector<float>>& features,
                     const std::vector<float>& targets, std::uint64_t seed) {
    util::Rng rng(seed);
    model_ = gbdt::fit_with_tuning(features, targets, gbdt::GbdtGrid{},
                                   /*validation_fraction=*/0.2, rng);
    fitted_ = true;
}

float HlPowModel::predict(const std::vector<float>& features) const {
    if (!fitted_) throw std::logic_error("HlPowModel::predict before fit");
    return model_.predict(features);
}

double HlPowModel::evaluate_mape(const std::vector<std::vector<float>>& features,
                                 const std::vector<float>& targets) const {
    double s = 0.0;
    for (std::size_t i = 0; i < features.size(); ++i)
        s += std::abs(predict(features[i]) - targets[i]) /
             std::max(1e-9f, std::abs(targets[i]));
    return features.empty() ? 0.0
                            : 100.0 * s / static_cast<double>(features.size());
}

} // namespace powergear::hlpow
