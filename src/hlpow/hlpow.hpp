// HL-Pow baseline model: activity-histogram features + tuned GBDT.
#pragma once

#include <vector>

#include "gbdt/gbdt.hpp"

namespace powergear::hlpow {

class HlPowModel {
public:
    /// Fit with the paper's validation-tuned GBDT (20% validation split).
    void fit(const std::vector<std::vector<float>>& features,
             const std::vector<float>& targets, std::uint64_t seed = 17);

    float predict(const std::vector<float>& features) const;

    /// MAPE (%) over a test set.
    double evaluate_mape(const std::vector<std::vector<float>>& features,
                         const std::vector<float>& targets) const;

private:
    gbdt::Gbdt model_;
    bool fitted_ = false;
};

} // namespace powergear::hlpow
