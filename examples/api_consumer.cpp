// Minimal external consumer of the public API facade.
//
// Everything here comes through ONE include — <powergear/powergear.hpp> —
// exactly as an out-of-tree client would use an installed powergear
// (find_package(powergear CONFIG) + powergear::powergear). scripts/check.sh
// compiles this file against a scratch install tree to prove the facade and
// the export set are complete; it is also built in-tree like every example.
//
// Flow: generate two tiny datasets, train an ensemble on one, batch-
// estimate the other, and show where the serve client would slot in for a
// daemon-backed deployment.
#include <powergear/powergear.hpp>

#include <cmath>
#include <cstdio>

static_assert(POWERGEAR_API_VERSION == 1,
              "example written against API v1 — revisit on a version bump");

int main() {
    using namespace powergear;

    dataset::GeneratorOptions gen;
    gen.samples_per_dataset = 6;
    gen.problem_size = 8;
    const dataset::Dataset train_ds = dataset::generate_dataset("atax", gen);
    const dataset::Dataset test_ds = dataset::generate_dataset("bicg", gen);

    PowerGear::Options opts;
    opts.kind = dataset::PowerKind::Total;
    opts.hidden = 8;
    opts.epochs = 2;
    opts.folds = 2;
    opts.seeds = 1;
    PowerGear pg(opts);
    pg.fit(dataset::pool_of(train_ds));

    const SamplePool test = dataset::pool_of(test_ds);
    const std::vector<Estimate> ests = pg.estimate_batch(test);
    bool ok = ests.size() == test.size();
    for (std::size_t i = 0; i < ests.size(); ++i) {
        ok = ok && std::isfinite(ests[i].watts) &&
             std::isfinite(ests[i].member_spread) &&
             ests[i].member_spread >= 0.0;
        std::printf("design %zu: %.4f W (spread %.4f W)\n", i, ests[i].watts,
                    ests[i].member_spread);
    }
    std::printf("MAPE vs board labels: %.2f%%\n", pg.evaluate_mape(test));

    // Daemon-backed deployments swap the in-process estimator for the serve
    // pair, same facade header:
    //   serve::ServerConfig cfg{.socket_path = "/run/pg.sock",
    //                           .model_path = "model.pgm"};
    //   serve::Server server(cfg);   // or: powergear serve --model ...
    //   serve::Client client("/run/pg.sock");
    //   Estimate e = client.estimate(test[0]);
    return ok ? 0 : 1;
}
