// Custom kernel example: author your own HLS kernel with the IR Builder —
// here a 32-tap FIR filter — sweep a few directive configurations, and
// report latency / resources / measured power for each, the workflow a
// downstream user follows for kernels outside the Polybench suite.
#include <cstdio>

#include "fpga/board.hpp"
#include "graphgen/features.hpp"
#include "hls/binding.hpp"
#include "hls/report.hpp"
#include "hls/scheduler.hpp"
#include "ir/builder.hpp"
#include "ir/printer.hpp"
#include "ir/verifier.hpp"
#include "sim/interpreter.hpp"
#include "sim/stimulus.hpp"

using namespace powergear;

namespace {

ir::Function build_fir(int taps, int samples) {
    ir::Builder b("fir");
    const int x = b.array("x", {samples});
    const int h = b.array("h", {taps});
    const int y = b.array("y", {samples});
    const int acc = b.reg("acc");

    b.begin_loop("sample", samples);
    {
        const int n = b.indvar();
        b.store_reg(acc, b.constant(0));
        b.begin_loop("tap", taps);
        {
            const int k = b.indvar();
            // y[n] += h[k] * x[n - k]; clamp the index into range with a
            // select so early samples read x[0].
            const int idx = b.sub(n, k);
            const int in_range = b.icmp(ir::Pred::SGE, idx, b.constant(0));
            const int safe_idx = b.select(in_range, idx, b.constant(0));
            const int prod = b.mul(b.load(h, {k}), b.load(x, {safe_idx}));
            b.store_reg(acc, b.add(b.load_reg(acc), prod));
        }
        b.end_loop();
        b.store(y, {n}, b.load_reg(acc));
    }
    b.end_loop();
    b.ret();
    ir::Function f = b.build();
    ir::verify_or_throw(f);
    return f;
}

} // namespace

int main() {
    const ir::Function fn = build_fir(/*taps=*/32, /*samples=*/64);
    std::printf("%s\n", ir::to_string(fn).c_str());

    sim::Interpreter interp(fn);
    sim::apply_stimulus(interp, fn, {});
    const sim::Trace trace = interp.run();

    const hls::DesignSpace space(fn);
    std::printf("design space: %llu points\n\n",
                static_cast<unsigned long long>(space.size()));
    std::printf("%-32s %10s %6s %5s %6s %8s %8s\n", "directives", "latency",
                "LUT", "DSP", "BRAM", "dyn(W)", "tot(W)");

    std::uint64_t uid = 0;
    for (std::uint64_t idx : {std::uint64_t{0}, space.size() / 3,
                              2 * space.size() / 3, space.size() - 1}) {
        const hls::Directives dirs = space.point(idx);
        const hls::ElabGraph elab = hls::elaborate(fn, dirs);
        const hls::Schedule sched = hls::schedule(fn, elab);
        const hls::Binding binding = hls::bind(fn, elab, sched);
        const hls::HlsReport report = hls::make_report(fn, elab, sched, binding);
        const sim::ActivityOracle oracle(fn, elab, trace, sched.total_latency);
        const fpga::BoardMeasurement m =
            fpga::measure_on_board(fn, elab, binding, oracle, report, uid++);
        std::printf("%-32s %10lld %6d %5d %6d %8.3f %8.3f\n",
                    dirs.to_string().c_str(),
                    static_cast<long long>(report.latency_cycles), report.lut,
                    report.dsp, report.bram, m.dynamic_w, m.total_w);
    }
    return 0;
}
