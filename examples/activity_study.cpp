// Activity study: the paper's core premise is that interconnect switching
// activity — not just resource counts — drives dynamic power. This example
// holds the architecture fixed (same kernel, same directives) and sweeps the
// input-data statistics: wider operands and less temporal correlation mean
// more Hamming-distance toggling per cycle, hence more dynamic power, while
// static power barely moves. It then shows the edge features tracking the
// same trend, which is exactly the signal HEC-GNN aggregates.
#include <cstdio>

#include "fpga/board.hpp"
#include "graphgen/features.hpp"
#include "hls/binding.hpp"
#include "hls/report.hpp"
#include "hls/scheduler.hpp"
#include "kernels/polybench.hpp"
#include "sim/interpreter.hpp"
#include "sim/stimulus.hpp"

using namespace powergear;

int main() {
    const ir::Function fn = kernels::build_polybench("gemm", 12);
    hls::Directives dirs;
    for (int l : fn.innermost_loops()) dirs.loops[l] = {2, true};

    const hls::ElabGraph elab = hls::elaborate(fn, dirs);
    const hls::Schedule sched = hls::schedule(fn, elab);
    const hls::Binding binding = hls::bind(fn, elab, sched);
    const hls::HlsReport report = hls::make_report(fn, elab, sched, binding);

    std::printf("fixed architecture: gemm, %s — LUT %d, DSP %d, latency %lld\n\n",
                dirs.to_string().c_str(), report.lut, report.dsp,
                static_cast<long long>(report.latency_cycles));
    std::printf("%-10s %-12s %12s %12s %12s %14s\n", "bits", "correlation",
                "dyn (W)", "static (W)", "total (W)", "mean edge SA");

    std::uint64_t uid = 0;
    for (int bits : {4, 12, 20, 28}) {
        for (double corr : {0.0, 0.6}) {
            sim::Interpreter interp(fn);
            sim::StimulusProfile prof;
            prof.active_bits = bits;
            prof.correlation = corr;
            prof.seed = 7;
            sim::apply_stimulus(interp, fn, prof);
            const sim::Trace trace = interp.run();
            const sim::ActivityOracle oracle(fn, elab, trace,
                                             sched.total_latency);

            const fpga::BoardMeasurement m = fpga::measure_on_board(
                fn, elab, binding, oracle, report, uid++);
            const graphgen::Graph g =
                graphgen::construct_graph(fn, elab, binding, oracle);
            double mean_sa = 0.0;
            for (const auto& e : g.edges) mean_sa += e.feat[0];
            mean_sa /= static_cast<double>(g.edges.empty() ? 1 : g.edges.size());

            std::printf("%-10d %-12.1f %12.4f %12.4f %12.4f %14.4f\n", bits,
                        corr, m.dynamic_w, m.static_w, m.total_w, mean_sa);
        }
    }
    std::printf("\nDynamic power and the graph's edge switching-activity\n"
                "features rise together with operand width while static\n"
                "power stays put. The GNN's edge-centric aggregation\n"
                "regresses exactly this relationship.\n");
    return 0;
}
