// Power report: push one kernel configuration through the full flow and
// print everything an engineer would want to see — the HLS report, the
// constructed graph's shape, the board measurement with its dynamic/static
// breakdown, and the Vivado-like baseline estimate with its runtime.
//
// Usage: power_report [kernel] [design_index]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "fpga/board.hpp"
#include "fpga/vivado_like.hpp"
#include "graphgen/features.hpp"
#include "hls/binding.hpp"
#include "hls/report.hpp"
#include "hls/scheduler.hpp"
#include "kernels/polybench.hpp"
#include "sim/interpreter.hpp"
#include "sim/stimulus.hpp"
#include "util/timer.hpp"

using namespace powergear;

int main(int argc, char** argv) {
    const std::string kernel = argc > 1 ? argv[1] : "gemm";
    const std::uint64_t want_index =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 5;

    const ir::Function fn = kernels::build_polybench(kernel, 8);
    const hls::DesignSpace space(fn);
    const std::uint64_t index = want_index % space.size();
    const hls::Directives dirs = space.point(index);
    std::printf("kernel      : %s\n", kernel.c_str());
    std::printf("design space: %llu points, showing #%llu (%s)\n",
                static_cast<unsigned long long>(space.size()),
                static_cast<unsigned long long>(index),
                dirs.to_string().c_str());

    sim::Interpreter interp(fn);
    sim::apply_stimulus(interp, fn, {});
    const sim::Trace trace = interp.run();

    util::Timer hls_timer;
    const hls::ElabGraph elab = hls::elaborate(fn, dirs);
    const hls::Schedule sched = hls::schedule(fn, elab);
    const hls::Binding binding = hls::bind(fn, elab, sched);
    const hls::HlsReport report = hls::make_report(fn, elab, sched, binding);
    const sim::ActivityOracle oracle(fn, elab, trace, sched.total_latency);
    const graphgen::Graph g = graphgen::construct_graph(fn, elab, binding, oracle);
    const double hls_s = hls_timer.seconds();

    std::printf("\n-- HLS report --------------------------------------\n");
    std::printf("LUT %d  FF %d  DSP %d  BRAM %d\n", report.lut, report.ff,
                report.dsp, report.bram);
    std::printf("latency %lld cycles, achieved clock %.2f ns, %d FSM states\n",
                static_cast<long long>(report.latency_cycles), report.clock_ns,
                report.fsm_states);

    std::printf("\n-- graph sample ------------------------------------\n");
    std::printf("%d nodes, %zu edges (from %d operator instances)\n",
                g.num_nodes, g.edges.size(), elab.num_ops());
    int rel_count[4] = {0, 0, 0, 0};
    for (const auto& e : g.edges) ++rel_count[e.relation];
    std::printf("relations: N->N %d, N->A %d, A->N %d, A->A %d\n", rel_count[0],
                rel_count[1], rel_count[2], rel_count[3]);

    std::printf("\n-- board measurement (ground truth) ----------------\n");
    const fpga::BoardMeasurement m =
        fpga::measure_on_board(fn, elab, binding, oracle, report, index);
    std::printf("total %.3f W = dynamic %.3f W + static %.3f W\n", m.total_w,
                m.dynamic_w, m.static_w);

    std::printf("\n-- Vivado-like estimator (uncalibrated) ------------\n");
    const fpga::VivadoEstimate est =
        fpga::vivado_estimate(fn, elab, binding, oracle, report);
    std::printf("total %.3f W, dynamic %.3f W (flow runtime %.1f ms)\n",
                est.total_w, est.dynamic_w, est.runtime_s * 1e3);
    std::printf("PowerGear graph construction runtime: %.1f ms\n", hls_s * 1e3);
    return 0;
}
