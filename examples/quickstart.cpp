// Quickstart: build a tiny suite of datasets, train PowerGear on all kernels
// except one, and estimate power for the held-out designs — the end-to-end
// flow of the paper's Fig. 1 in ~50 lines.
#include <algorithm>
#include <cstdio>

#include "core/powergear.hpp"
#include "dataset/generator.hpp"
#include "dataset/splits.hpp"
#include "util/env.hpp"

using namespace powergear;

int main() {
    // Small datasets for a fast demo; raise POWERGEAR_SAMPLES for fidelity.
    dataset::GeneratorOptions gen;
    gen.samples_per_dataset = util::env_int("POWERGEAR_SAMPLES", 12);
    gen.problem_size = 8;

    std::printf("Generating datasets (gemm, atax, mvt)...\n");
    std::vector<dataset::Dataset> suite;
    for (const char* k : {"gemm", "atax", "mvt"})
        suite.push_back(dataset::generate_dataset(k, gen));
    for (const auto& ds : suite)
        std::printf("  %-8s %3d samples, avg %.0f graph nodes\n", ds.name.c_str(),
                    ds.size(), ds.avg_nodes());

    // Leave mvt out, train on the rest (transferability to unseen kernels).
    const std::size_t held_out = 2;
    core::PowerGear::Options opts;
    opts.kind = dataset::PowerKind::Total;
    opts.epochs = util::env_int("POWERGEAR_EPOCHS", 25);
    opts.folds = 2;

    core::PowerGear pg(opts);
    std::printf("Training HEC-GNN ensemble on gemm + atax...\n");
    pg.fit(dataset::pool_except(suite, held_out));

    std::printf("Estimating unseen mvt designs (one batched call):\n");
    const core::SamplePool test = dataset::pool_of(suite[held_out]);
    const std::vector<core::Estimate> ests = pg.estimate_batch(test);
    for (std::size_t i = 0; i < std::min<std::size_t>(5, test.size()); ++i) {
        const auto& s = test[i];
        std::printf("  %-28s estimated %.3f W (±%.3f across members), "
                    "measured %.3f W\n",
                    s.directives.to_string().c_str(), ests[i].watts,
                    ests[i].member_spread, s.total_power_w);
    }
    std::printf("MAPE on held-out mvt: %.2f%%\n", pg.evaluate_mape(test));
    return 0;
}
