// DSE example (the paper's case study): use PowerGear as the power predictor
// inside an iterative latency/dynamic-power Pareto exploration of a kernel's
// directive space, and compare the resulting ADRS against exhaustive search.
#include <cstdio>

#include "core/powergear.hpp"
#include "dataset/generator.hpp"
#include "dataset/splits.hpp"
#include "dse/explorer.hpp"
#include "util/env.hpp"

using namespace powergear;

int main() {
    dataset::GeneratorOptions gen;
    gen.samples_per_dataset = util::env_int("POWERGEAR_SAMPLES", 40);
    gen.problem_size = 8;

    std::printf("Generating datasets (train: gemm, bicg, syrk; explore: atax)\n");
    std::vector<dataset::Dataset> suite;
    for (const char* k : {"gemm", "bicg", "syrk", "atax"})
        suite.push_back(dataset::generate_dataset(k, gen));
    const std::size_t target = 3;

    core::PowerGear::Options opts;
    opts.kind = dataset::PowerKind::Dynamic;
    opts.epochs = util::env_int("POWERGEAR_EPOCHS", 200);
    opts.learning_rate = 1.5e-3;
    opts.folds = 2;
    core::PowerGear pg(opts);
    pg.fit(dataset::pool_except(suite, target));
    std::printf("Dynamic-power MAPE on atax: %.2f%%\n",
                pg.evaluate_mape(dataset::pool_of(suite[target])));

    // Objective points over the whole atax space: exact latency from HLS,
    // power predicted by the model vs measured by the board.
    std::vector<dse::Point> truth, predicted;
    const auto& ds = suite[target];
    for (int i = 0; i < ds.size(); ++i) {
        const auto& s = ds.samples[static_cast<std::size_t>(i)];
        truth.push_back({static_cast<double>(s.latency_cycles),
                         s.dynamic_power_w, i});
        predicted.push_back({static_cast<double>(s.latency_cycles),
                             pg.estimate(s), i});
    }

    for (double budget : {0.2, 0.3, 0.4}) {
        dse::ExplorerConfig cfg;
        cfg.total_budget = budget;
        const dse::DseResult res = dse::explore(predicted, truth, cfg);
        std::printf("budget %2.0f%%: sampled %2zu/%d designs, ADRS %.4f, "
                    "frontier %zu points\n",
                    budget * 100, res.sampled.size(), ds.size(), res.adrs_value,
                    res.approx_front.size());
    }

    const dse::DseResult full = dse::explore(predicted, truth, {0.02, 1.0, 5});
    std::printf("(exhaustive sampling reaches ADRS %.4f by construction)\n",
                full.adrs_value);
    return 0;
}
