// DSE example (the paper's case study): use PowerGear as the power predictor
// inside an iterative latency/dynamic-power Pareto exploration of a kernel's
// directive space, and compare the resulting ADRS against exhaustive search.
#include <cstdio>

#include "core/powergear.hpp"
#include "dataset/generator.hpp"
#include "dataset/splits.hpp"
#include "dse/explorer.hpp"
#include "util/env.hpp"

using namespace powergear;

int main() {
    dataset::GeneratorOptions gen;
    gen.samples_per_dataset = util::env_int("POWERGEAR_SAMPLES", 40);
    gen.problem_size = 8;

    std::printf("Generating datasets (train: gemm, bicg, syrk; explore: atax)\n");
    std::vector<dataset::Dataset> suite;
    for (const char* k : {"gemm", "bicg", "syrk", "atax"})
        suite.push_back(dataset::generate_dataset(k, gen));
    const std::size_t target = 3;

    core::PowerGear::Options opts;
    opts.kind = dataset::PowerKind::Dynamic;
    opts.epochs = util::env_int("POWERGEAR_EPOCHS", 200);
    opts.learning_rate = 1.5e-3;
    opts.folds = 2;
    core::PowerGear pg(opts);
    pg.fit(dataset::pool_except(suite, target));
    std::printf("Dynamic-power MAPE on atax: %.2f%%\n",
                pg.evaluate_mape(dataset::pool_of(suite[target])));

    // The Explorer scores every candidate concurrently with the trained
    // estimator (exact latency comes from HLS, truth from the board) before
    // running the sequential refinement loop.
    const auto& ds = suite[target];
    const core::SamplePool candidates = dataset::pool_of(ds);
    const auto predictor = [&pg](const dataset::Sample& s) {
        return pg.estimate(s);
    };

    for (double budget : {0.2, 0.3, 0.4}) {
        dse::ExplorerConfig cfg;
        cfg.total_budget = budget;
        const dse::DseResult res =
            dse::Explorer(cfg).run(candidates, predictor);
        std::printf("budget %2.0f%%: sampled %2zu/%d designs, ADRS %.4f, "
                    "frontier %zu points\n",
                    budget * 100, res.sampled.size(), ds.size(), res.adrs_value,
                    res.approx_front.size());
    }

    const dse::DseResult full =
        dse::Explorer({0.02, 1.0, 5}).run(candidates, predictor);
    std::printf("(exhaustive sampling reaches ADRS %.4f by construction)\n",
                full.adrs_value);
    return 0;
}
