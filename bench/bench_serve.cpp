// Load generator for the `powergear serve` daemon.
//
//   bench_serve [--requests N] [--cold-reps N] [--out FILE] [--jobs N]
//
// Trains a tiny ensemble, saves it, starts an in-process daemon on a
// private socket, and measures the warm serving path three ways:
//
//   1. Closed-loop clients at 1 / 4 / 16 connections, each thread doing
//      synchronous round trips: estimates/s plus p50/p95/p99 per-request
//      latency (client-observed, includes the coalescing linger).
//   2. A pipelined burst on one connection (all eval samples in flight at
//      once), which the admission queue coalesces into batches of >= 16 —
//      the throughput configuration.
//   3. The cold path, twice:
//      a. the real `powergear estimate` process path (process startup +
//         model load + sample construction + estimate) for a 16-sample
//         batch, by exec'ing the CLI that was built next to this binary
//         (--cli to point elsewhere) — the headline speedup comparator;
//      b. an in-process floor (fresh PowerGear::load() + one estimate),
//         which isolates how much of the cold cost is the model itself.
//
// Writes a "powergear-serve-bench-v1" JSON report for
// scripts/update_experiments.py-style consumption and exits 0 on success,
// 2 on bad usage or any benchmark failure.
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/serve/client.hpp"
#include "core/serve/server.hpp"
#include "dataset/generator.hpp"
#include "dataset/splits.hpp"
#include "obs/json.hpp"
#include "util/parallel.hpp"
#include "util/timer.hpp"

using namespace powergear;

namespace {

/// Tiny-but-real serving fixture: a 2-member ensemble trained on two
/// kernels, evaluated on a third (same scale as bench_regression's
/// estimate_batch fixture so the numbers are comparable).
struct ServeFixture {
    core::PowerGear pg;
    dataset::Dataset eval;
    std::string model_path;
    std::string socket_path;

    ServeFixture()
        : pg([] {
              core::PowerGear::Options o;
              o.kind = dataset::PowerKind::Dynamic;
              o.hidden = 8;
              o.epochs = 2;
              o.folds = 2;
              o.seeds = 1;
              return o;
          }()) {
        dataset::GeneratorOptions gen;
        gen.samples_per_dataset = 8;
        gen.problem_size = 8;
        std::vector<dataset::Dataset> suite;
        suite.push_back(dataset::generate_dataset("atax", gen));
        suite.push_back(dataset::generate_dataset("bicg", gen));
        pg.fit(dataset::pool_except(suite, suite.size()));
        gen.samples_per_dataset = 24;
        eval = dataset::generate_dataset("mvt", gen);

        const std::string tag = std::to_string(::getpid());
        socket_path = "/tmp/pgserve_bench_" + tag + ".sock";
        model_path = "/tmp/pgserve_bench_" + tag + ".pgm";
        pg.save(model_path);
    }
    ~ServeFixture() { std::filesystem::remove(model_path); }
};

double percentile(std::vector<double> v, double p) {
    if (v.empty()) return 0.0;
    std::sort(v.begin(), v.end());
    const double idx = p * static_cast<double>(v.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(idx);
    const std::size_t hi = std::min(lo + 1, v.size() - 1);
    const double frac = idx - static_cast<double>(lo);
    return v[lo] + (v[hi] - v[lo]) * frac;
}

struct LoadResult {
    int connections = 0;
    int requests = 0;
    double estimates_per_s = 0.0;
    double p50_ms = 0.0, p95_ms = 0.0, p99_ms = 0.0;
    double mean_batch = 0.0; ///< requests per estimate_batch on the server
};

/// Closed-loop load: `connections` threads, each with its own Client,
/// issue synchronous estimate round trips until `total_requests` are done.
LoadResult run_load(const ServeFixture& fx, core::serve::Server& server,
                    int connections, int total_requests) {
    const core::serve::Server::Stats before = server.stats();
    std::vector<std::vector<double>> lat_ms(
        static_cast<std::size_t>(connections));
    std::atomic<int> next{0};
    std::vector<std::thread> threads;
    util::Timer wall;
    for (int c = 0; c < connections; ++c) {
        threads.emplace_back([&, c] {
            core::serve::Client client(fx.socket_path);
            for (;;) {
                const int i = next.fetch_add(1, std::memory_order_relaxed);
                if (i >= total_requests) break;
                const dataset::Sample& s =
                    fx.eval.samples[static_cast<std::size_t>(i) %
                                    fx.eval.samples.size()];
                util::Timer t;
                const core::Estimate est = client.estimate(s);
                lat_ms[static_cast<std::size_t>(c)].push_back(t.millis());
                if (!(est.watts == est.watts)) std::abort(); // NaN guard
            }
        });
    }
    for (std::thread& t : threads) t.join();
    const double wall_ms = wall.millis();
    const core::serve::Server::Stats after = server.stats();

    std::vector<double> all;
    for (const auto& v : lat_ms) all.insert(all.end(), v.begin(), v.end());
    LoadResult r;
    r.connections = connections;
    r.requests = total_requests;
    r.estimates_per_s = total_requests / (wall_ms * 1e-3);
    r.p50_ms = percentile(all, 0.50);
    r.p95_ms = percentile(all, 0.95);
    r.p99_ms = percentile(all, 0.99);
    const std::uint64_t batches = after.batches - before.batches;
    r.mean_batch =
        batches ? static_cast<double>(after.requests - before.requests) /
                      static_cast<double>(batches)
                : 0.0;
    return r;
}

std::string today() {
    std::time_t t = std::time(nullptr);
    std::tm tm{};
    localtime_r(&t, &tm);
    char buf[16];
    std::strftime(buf, sizeof buf, "%Y-%m-%d", &tm);
    return buf;
}

int usage(const char* argv0) {
    std::fprintf(stderr,
                 "usage: %s [--requests N] [--cold-reps N] [--out FILE]\n"
                 "          [--jobs N] [--cli PATH]\n"
                 "exit codes: 0 ok, 2 bad usage or benchmark failure\n",
                 argv0);
    return 2;
}

/// The CLI built next to this binary (build/bench/.. -> build/tools).
std::string default_cli(const char* argv0) {
    namespace fs = std::filesystem;
    std::error_code ec;
    const fs::path self = fs::canonical(argv0, ec);
    if (ec) return {};
    const fs::path cli = self.parent_path().parent_path() / "tools" /
                         "powergear";
    return fs::exists(cli) ? cli.string() : std::string{};
}

} // namespace

int main(int argc, char** argv) {
    int requests = 1600;
    int cold_reps = 3;
    int jobs = 0; // 0: leave the library default (all cores)
    std::string out_path;
    std::string cli_path = default_cli(argv[0]);
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const bool has_next = i + 1 < argc;
        if (arg == "--requests" && has_next) requests = std::atoi(argv[++i]);
        else if (arg == "--cold-reps" && has_next) cold_reps = std::atoi(argv[++i]);
        else if (arg == "--jobs" && has_next) jobs = std::atoi(argv[++i]);
        else if (arg == "--out" && has_next) out_path = argv[++i];
        else if (arg == "--cli" && has_next) cli_path = argv[++i];
        else return usage(argv[0]);
    }
    if (requests < 16 || cold_reps < 1 || jobs < 0) return usage(argv[0]);
    if (jobs > 0) util::set_parallel_jobs(jobs);
    if (out_path.empty()) out_path = "SERVE_BENCH_" + today() + ".json";

    try {
        std::printf("bench_serve: training fixture ensemble...\n");
        const ServeFixture fx;

        core::serve::ServerConfig cfg;
        cfg.socket_path = fx.socket_path;
        cfg.model_path = fx.model_path;
        core::serve::Server server(cfg);
        server.start();
        std::printf("bench_serve: daemon on %s (%d requests per level)\n",
                    fx.socket_path.c_str(), requests);

        // 1. Closed-loop latency/throughput at 1 / 4 / 16 connections.
        std::vector<LoadResult> levels;
        for (const int conns : {1, 4, 16}) {
            const LoadResult r = run_load(fx, server, conns, requests);
            std::printf("  conns=%-2d  %9.0f est/s  p50 %7.3f ms  "
                        "p95 %7.3f ms  p99 %7.3f ms  mean batch %5.1f\n",
                        r.connections, r.estimates_per_s, r.p50_ms, r.p95_ms,
                        r.p99_ms, r.mean_batch);
            levels.push_back(r);
        }

        // 2. Pipelined burst: every eval sample in flight on one
        // connection; the admission queue coalesces them (batch >= 16).
        std::vector<const dataset::Sample*> ptrs;
        for (const auto& s : fx.eval.samples) ptrs.push_back(&s);
        double burst_eps = 0.0, burst_batch = 0.0;
        {
            core::serve::Client client(fx.socket_path);
            (void)client.estimate_batch(ptrs); // warmup
            const core::serve::Server::Stats before = server.stats();
            const int reps = std::max(1, requests / static_cast<int>(
                                                        ptrs.size()));
            util::Timer t;
            for (int i = 0; i < reps; ++i)
                if (client.estimate_batch(ptrs).size() != ptrs.size())
                    std::abort();
            const double ms = t.millis();
            const core::serve::Server::Stats after = server.stats();
            burst_eps =
                static_cast<double>(ptrs.size()) * reps / (ms * 1e-3);
            const std::uint64_t batches = after.batches - before.batches;
            burst_batch = batches
                              ? static_cast<double>(after.requests -
                                                    before.requests) /
                                    static_cast<double>(batches)
                              : 0.0;
            std::printf("  pipelined %9.0f est/s  mean batch %5.1f\n",
                        burst_eps, burst_batch);
        }
        server.stop();

        // 3a. Cold process path: one `powergear estimate` invocation per
        // rep, 16 samples each (batch >= 16 on both sides of the
        // comparison), best-of-reps to shed scheduler noise.
        const double warm_ms = 1e3 / burst_eps; // per estimate, batch >= 16
        double cold_proc_ms = 0.0;
        if (cli_path.empty()) {
            std::printf("  (no CLI found next to this binary and no --cli: "
                        "skipping the process-path comparison)\n");
        } else {
            const std::string cmd = "'" + cli_path + "' estimate --model '" +
                                    fx.model_path +
                                    "' --kernel mvt --samples 16 --size 8 "
                                    "> /dev/null";
            double best_ms = 0.0;
            for (int i = 0; i < cold_reps; ++i) {
                util::Timer t;
                if (std::system(cmd.c_str()) != 0)
                    throw std::runtime_error("cold estimate run failed: " +
                                             cmd);
                const double ms = t.millis();
                if (i == 0 || ms < best_ms) best_ms = ms;
            }
            cold_proc_ms = best_ms / 16.0;
        }

        // 3b. In-process floor: artifact load + one estimate, no process.
        double cold_inproc_ms = 0.0;
        {
            const int reps = 20;
            util::Timer t;
            for (int i = 0; i < reps; ++i) {
                core::PowerGear cold{core::PowerGear::Options{}};
                cold.load(fx.model_path);
                const double w = cold.estimate(
                    fx.eval.samples[static_cast<std::size_t>(i) %
                                    fx.eval.samples.size()]);
                if (!(w == w)) std::abort();
            }
            cold_inproc_ms = t.millis() / reps;
        }
        const double speedup =
            cold_proc_ms > 0.0 ? cold_proc_ms / warm_ms : 0.0;
        std::printf("  cold process path %8.3f ms/req   in-proc floor "
                    "%6.3f ms/req   warm (pipelined) %8.4f ms/req   "
                    "speedup %.1fx\n",
                    cold_proc_ms, cold_inproc_ms, warm_ms, speedup);

        obs::JsonValue root = obs::JsonValue::object();
        root.set("schema", obs::JsonValue("powergear-serve-bench-v1"));
        root.set("date", obs::JsonValue(today()));
        root.set("requests",
                 obs::JsonValue(static_cast<std::int64_t>(requests)));
        obs::JsonValue conns = obs::JsonValue::object();
        for (const LoadResult& r : levels) {
            obs::JsonValue c = obs::JsonValue::object();
            c.set("estimates_per_s", obs::JsonValue(r.estimates_per_s));
            c.set("p50_ms", obs::JsonValue(r.p50_ms));
            c.set("p95_ms", obs::JsonValue(r.p95_ms));
            c.set("p99_ms", obs::JsonValue(r.p99_ms));
            c.set("mean_batch", obs::JsonValue(r.mean_batch));
            conns.set(std::to_string(r.connections), std::move(c));
        }
        root.set("connections", std::move(conns));
        obs::JsonValue burst = obs::JsonValue::object();
        burst.set("estimates_per_s", obs::JsonValue(burst_eps));
        burst.set("mean_batch", obs::JsonValue(burst_batch));
        root.set("pipelined", std::move(burst));
        root.set("cold_process_ms_per_estimate",
                 obs::JsonValue(cold_proc_ms));
        root.set("cold_inproc_ms_per_estimate",
                 obs::JsonValue(cold_inproc_ms));
        root.set("warm_ms_per_estimate", obs::JsonValue(warm_ms));
        root.set("speedup_vs_cold_process", obs::JsonValue(speedup));

        std::FILE* f = std::fopen(out_path.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "error: cannot write %s\n",
                         out_path.c_str());
            return 2;
        }
        const std::string body = root.dump(2) + "\n";
        std::fwrite(body.data(), 1, body.size(), f);
        std::fclose(f);
        std::printf("[saved] %s\n", out_path.c_str());
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
    }
}
