// Google-benchmark microbenchmarks for the hot substrate kernels: IR
// simulation, activity extraction, graph construction, SA placement, the
// tensor matmul, and one HEC-GNN forward pass. Useful for tracking
// performance regressions of the pieces every experiment leans on.
#include <benchmark/benchmark.h>

#include "fpga/netlist.hpp"
#include "fpga/placement.hpp"
#include "gnn/model.hpp"
#include "graphgen/features.hpp"
#include "hls/binding.hpp"
#include "hls/report.hpp"
#include "hls/scheduler.hpp"
#include "kernels/polybench.hpp"
#include "sim/interpreter.hpp"
#include "sim/stimulus.hpp"

using namespace powergear;

namespace {

struct Prepared {
    ir::Function fn;
    sim::Trace trace;
    hls::ElabGraph elab;
    hls::Schedule sched;
    hls::Binding binding;
    graphgen::Graph graph;
    gnn::GraphTensors tensors;

    explicit Prepared(const std::string& kernel, int size, std::uint64_t point)
        : fn(kernels::build_polybench(kernel, size)),
          trace{}, elab{}, sched{}, binding{} {
        sim::Interpreter interp(fn);
        sim::apply_stimulus(interp, fn, {});
        trace = interp.run();
        const hls::DesignSpace space(fn);
        elab = hls::elaborate(fn, space.point(point % space.size()));
        sched = hls::schedule(fn, elab);
        binding = hls::bind(fn, elab, sched);
        const sim::ActivityOracle oracle(fn, elab, trace, sched.total_latency);
        graph = graphgen::construct_graph(fn, elab, binding, oracle);
        std::vector<double> metadata(10, 1.0);
        tensors = gnn::GraphTensors::from(graph, metadata);
    }
};

const Prepared& prepared() {
    static const Prepared p("gemm", 16, 40);
    return p;
}

void BM_IrSimulation(benchmark::State& state) {
    const auto& p = prepared();
    sim::Interpreter interp(p.fn);
    sim::apply_stimulus(interp, p.fn, {});
    for (auto _ : state) {
        auto trace = interp.run();
        benchmark::DoNotOptimize(trace.executed_ops);
    }
}
BENCHMARK(BM_IrSimulation);

void BM_ScheduleAndBind(benchmark::State& state) {
    const auto& p = prepared();
    for (auto _ : state) {
        auto sched = hls::schedule(p.fn, p.elab);
        auto binding = hls::bind(p.fn, p.elab, sched);
        benchmark::DoNotOptimize(binding.num_units());
    }
}
BENCHMARK(BM_ScheduleAndBind);

void BM_GraphConstruction(benchmark::State& state) {
    const auto& p = prepared();
    const sim::ActivityOracle oracle(p.fn, p.elab, p.trace,
                                     p.sched.total_latency);
    for (auto _ : state) {
        auto g = graphgen::construct_graph(p.fn, p.elab, p.binding, oracle);
        benchmark::DoNotOptimize(g.num_nodes);
    }
}
BENCHMARK(BM_GraphConstruction);

void BM_Placement(benchmark::State& state) {
    const auto& p = prepared();
    const sim::ActivityOracle oracle(p.fn, p.elab, p.trace,
                                     p.sched.total_latency);
    const fpga::Netlist nl =
        fpga::build_netlist(p.fn, p.elab, p.binding, oracle);
    for (auto _ : state) {
        auto placed = fpga::place(nl);
        benchmark::DoNotOptimize(placed.total_hpwl);
    }
}
BENCHMARK(BM_Placement);

void BM_Matmul128(benchmark::State& state) {
    util::Rng rng(3);
    const nn::Tensor a = nn::Tensor::xavier(128, 128, rng);
    const nn::Tensor b = nn::Tensor::xavier(128, 128, rng);
    for (auto _ : state) {
        auto c = nn::matmul(a, b);
        benchmark::DoNotOptimize(c.data());
    }
}
BENCHMARK(BM_Matmul128);

void BM_HecGnnForward(benchmark::State& state) {
    const auto& p = prepared();
    gnn::ModelConfig cfg;
    cfg.node_dim = p.tensors.x.cols();
    cfg.hidden = 32;
    gnn::PowerModel model(cfg);
    for (auto _ : state) {
        const float out = model.predict(p.tensors);
        benchmark::DoNotOptimize(out);
    }
}
BENCHMARK(BM_HecGnnForward);

} // namespace

BENCHMARK_MAIN();
