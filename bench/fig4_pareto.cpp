// Reproduces Fig. 4: dynamic power vs latency Pareto frontiers of Atax and
// Mvt under a 40% total sampling budget with PowerGear as the prediction
// model. Prints the exact frontier (ground truth over the full space) and
// the PowerGear-guided approximate frontier as plottable series, and saves
// them to fig4_pareto.csv.
#include "bench_common.hpp"

using namespace powergear;

int main() {
    const util::BenchScale scale = util::bench_scale();
    const auto suite = bench::make_suite(scale);

    core::PowerGear::Options pg_opts =
        core::PowerGear::Options::from_bench_scale(scale,
                                                   dataset::PowerKind::Dynamic);

    util::Table table({"kernel", "series", "latency_cycles", "dynamic_power_w"});
    for (const char* kernel : {"atax", "mvt"}) {
        std::size_t d = suite.size();
        for (std::size_t k = 0; k < suite.size(); ++k)
            if (suite[k].name == kernel) d = k;
        if (d == suite.size()) continue;

        const dataset::Dataset pool = bench::dse_pool(suite[d].name);
        const auto truth = bench::truth_points(pool);
        const auto predicted = bench::predicted_powergear(suite, d, pool, pg_opts);

        dse::ExplorerConfig cfg;
        cfg.total_budget = 0.40;
        const dse::DseResult res = dse::explore(predicted, truth, cfg);

        std::printf("\nFig. 4 — %s (ADRS %.4f, sampled %zu/%d points)\n", kernel,
                    res.adrs_value, res.sampled.size(), pool.size());
        std::printf("  %-12s %14s %16s\n", "series", "latency", "dyn power (W)");
        for (const dse::Point& p : res.exact_front) {
            std::printf("  %-12s %14.0f %16.4f\n", "exact", p.latency, p.power);
            table.add_row({kernel, "exact", util::Table::num(p.latency, 0),
                           util::Table::num(p.power, 4)});
        }
        for (const dse::Point& p : res.approx_front) {
            std::printf("  %-12s %14.0f %16.4f\n", "powergear", p.latency, p.power);
            table.add_row({kernel, "powergear", util::Table::num(p.latency, 0),
                           util::Table::num(p.power, 4)});
        }
    }
    if (table.save_csv("fig4_pareto.csv"))
        std::printf("\n[saved] fig4_pareto.csv\n");
    return 0;
}
