// Reproduces Table I (accuracy columns): leave-one-application-out errors of
// total power (Vivado-like, HL-Pow, PowerGear) and dynamic power (GCN,
// GraphSage, GraphConv, GINE, HL-Pow, PowerGear) across the nine Polybench
// datasets, plus the dataset properties columns.
//
// Scale knobs: POWERGEAR_SAMPLES / _HIDDEN / _EPOCHS / _FOLDS / _SEEDS / _LR.
#include "bench_common.hpp"

using namespace powergear;

int main() {
    const util::BenchScale scale = util::bench_scale();
    const auto suite = bench::make_suite(scale);

    auto pg_opts = [&](dataset::PowerKind kind, gnn::ConvKind conv) {
        core::PowerGear::Options o =
            core::PowerGear::Options::from_bench_scale(scale, kind);
        o.conv = conv;
        if (conv != gnn::ConvKind::HecGnn) {
            o.folds = 1; // baselines: single model, 20% validation split
            o.seeds = 1;
        }
        return o;
    };

    util::Table table({"Dataset", "#Samples", "Avg.#Nodes",
                       "Tot:Vivado", "Tot:HL-Pow", "Tot:PowerGear",
                       "Dyn:GCN", "Dyn:GraphSage", "Dyn:GraphConv", "Dyn:GINE",
                       "Dyn:HL-Pow", "Dyn:PowerGear"});

    const gnn::ConvKind baselines[] = {gnn::ConvKind::Gcn, gnn::ConvKind::Sage,
                                       gnn::ConvKind::GraphConv,
                                       gnn::ConvKind::Gine};

    std::vector<std::vector<double>> columns(9);
    for (std::size_t d = 0; d < bench::eval_count(suite); ++d) {
        util::Timer t;
        std::vector<double> row;
        row.push_back(bench::vivado_loo_mape(suite, d, /*total=*/true));
        row.push_back(bench::hlpow_loo_mape(suite, d, dataset::PowerKind::Total));
        row.push_back(bench::gnn_loo_mape(
            suite, d, pg_opts(dataset::PowerKind::Total, gnn::ConvKind::HecGnn)));
        for (gnn::ConvKind conv : baselines)
            row.push_back(bench::gnn_loo_mape(
                suite, d, pg_opts(dataset::PowerKind::Dynamic, conv)));
        row.push_back(bench::hlpow_loo_mape(suite, d, dataset::PowerKind::Dynamic));
        row.push_back(bench::gnn_loo_mape(
            suite, d,
            pg_opts(dataset::PowerKind::Dynamic, gnn::ConvKind::HecGnn)));

        for (std::size_t c = 0; c < row.size(); ++c) columns[c].push_back(row[c]);
        table.add_row({suite[d].name, std::to_string(suite[d].size()),
                       util::Table::num(suite[d].avg_nodes(), 0),
                       util::Table::num(row[0]), util::Table::num(row[1]),
                       util::Table::num(row[2]), util::Table::num(row[3]),
                       util::Table::num(row[4]), util::Table::num(row[5]),
                       util::Table::num(row[6]), util::Table::num(row[7]),
                       util::Table::num(row[8])});
        std::printf("[%-8s] done in %.1fs\n", suite[d].name.c_str(), t.seconds());
    }

    double avg_samples = 0.0, avg_nodes = 0.0;
    const std::size_t evals = bench::eval_count(suite);
    for (std::size_t d = 0; d < evals; ++d) {
        avg_samples += suite[d].size();
        avg_nodes += suite[d].avg_nodes();
    }
    avg_samples /= static_cast<double>(evals);
    avg_nodes /= static_cast<double>(evals);

    std::vector<std::string> avg_row = {"Average",
                                        util::Table::num(avg_samples, 0),
                                        util::Table::num(avg_nodes, 0)};
    for (const auto& col : columns) avg_row.push_back(util::Table::num(util::mean(col)));
    table.add_row(avg_row);

    std::printf("\nTable I (errors %% of total / dynamic power, leave-one-out):\n");
    bench::emit(table, "table1_accuracy.csv");
    return 0;
}
