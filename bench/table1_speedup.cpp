// Reproduces Table I (last column): runtime speedup of the PowerGear
// estimation path (HLS artifacts -> graph construction -> GNN inference)
// over the Vivado-like power estimation flow (gate-level vector simulation
// -> implementation/placement -> analytical report). Both sides are wall-
// clock measured on the same designs; nothing is asserted.
#include "bench_common.hpp"

using namespace powergear;

int main() {
    const util::BenchScale scale = util::bench_scale();
    const auto suite = bench::make_suite(scale);

    // A trained model is needed to time inference; train one small dynamic-
    // power ensemble on all datasets but the first.
    core::PowerGear::Options opts = core::PowerGear::Options::from_bench_scale(
        scale, dataset::PowerKind::Dynamic);
    opts.epochs = std::min(opts.epochs, 40); // speedup doesn't need accuracy
    core::PowerGear pg(opts);
    pg.fit(dataset::pool_except(suite, 0));

    util::Table table({"Dataset", "Vivado flow (ms)", "PowerGear (ms)",
                       "Speedup"});
    std::vector<double> speedups;
    for (const auto& ds : suite) {
        double viv_ms = 0.0, pg_ms = 0.0;
        // PowerGear side = HLS+graph construction (recorded at dataset
        // generation) + batched GNN inference (timed now).
        util::Timer t;
        (void)pg.estimate_batch(dataset::pool_of(ds));
        pg_ms += t.seconds() * 1e3;
        for (const auto& s : ds.samples) {
            pg_ms += s.powergear_runtime_s * 1e3;
            viv_ms += s.vivado_runtime_s * 1e3;
        }
        viv_ms /= ds.size();
        pg_ms /= ds.size();
        const double speedup = viv_ms / pg_ms;
        speedups.push_back(speedup);
        table.add_row({ds.name, util::Table::num(viv_ms, 2),
                       util::Table::num(pg_ms, 2),
                       util::Table::num(speedup, 2) + "x"});
    }
    table.add_row({"Average", "-", "-",
                   util::Table::num(util::mean(speedups), 2) + "x"});

    std::printf("\nTable I (runtime speedup over the Vivado-like estimator):\n");
    bench::emit(table, "table1_speedup.csv");
    return 0;
}
