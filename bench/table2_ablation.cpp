// Reproduces Table II: dynamic-power estimation error of the HEC-GNN
// variants — w/o opt. (no edge features, no directionality, no
// heterogeneity, no metadata), w/o e.f., w/o dir., w/o hetr., w/o md.,
// sgl. (single optimized model, no ensemble), and prop. (the full model).
#include "bench_common.hpp"

using namespace powergear;

int main() {
    const util::BenchScale scale = util::bench_scale();
    const auto suite = bench::make_suite(scale);

    struct Variant {
        const char* name;
        bool edge_features, directed, heterogeneous, metadata, ensemble;
    };
    const Variant variants[] = {
        {"w/o opt.", false, false, false, false, false},
        {"w/o e.f.", false, true, true, true, false},
        {"w/o dir.", true, false, true, true, false},
        {"w/o hetr.", true, true, false, true, false},
        {"w/o md.", true, true, true, false, false},
        {"sgl.", true, true, true, true, false},
        {"prop.", true, true, true, true, true},
    };

    std::vector<std::string> header = {"Dataset"};
    for (const Variant& v : variants) header.push_back(v.name);
    util::Table table(header);

    std::vector<std::vector<double>> columns(std::size(variants));
    for (std::size_t d = 0; d < bench::eval_count(suite); ++d) {
        util::Timer t;
        std::vector<std::string> row = {suite[d].name};
        for (std::size_t v = 0; v < std::size(variants); ++v) {
            core::PowerGear::Options o =
                core::PowerGear::Options::from_bench_scale(
                    scale, dataset::PowerKind::Dynamic);
            o.edge_features = variants[v].edge_features;
            o.directed = variants[v].directed;
            o.heterogeneous = variants[v].heterogeneous;
            o.metadata = variants[v].metadata;
            if (!variants[v].ensemble) {
                o.folds = 1;
                o.seeds = 1;
            }
            const double err = bench::gnn_loo_mape(suite, d, o);
            columns[v].push_back(err);
            row.push_back(util::Table::num(err));
        }
        table.add_row(row);
        std::printf("[%-8s] done in %.1fs\n", suite[d].name.c_str(), t.seconds());
    }
    std::vector<std::string> avg = {"Average"};
    for (const auto& col : columns) avg.push_back(util::Table::num(util::mean(col)));
    table.add_row(avg);

    std::printf("\nTable II (dynamic power error %% of HEC-GNN variants):\n");
    bench::emit(table, "table2_ablation.csv");
    return 0;
}
