// Shared helpers for the table/figure reproduction benches.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "core/powergear.hpp"
#include "dataset/generator.hpp"
#include "kernels/polybench.hpp"
#include "kernels/synthetic.hpp"
#include "dataset/splits.hpp"
#include "dse/explorer.hpp"
#include "fpga/vivado_like.hpp"
#include "hlpow/hlpow.hpp"
#include "util/csv.hpp"
#include "util/env.hpp"
#include "util/parallel.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace powergear::bench {

/// Generate the nine Polybench datasets at the env-controlled scale, plus
/// POWERGEAR_SYNTH synthetic-kernel datasets (train-only augmentation — the
/// paper mentions adding synthetic loop patterns to diversify training).
inline std::vector<dataset::Dataset> make_suite(const util::BenchScale& scale) {
    dataset::GeneratorOptions gen;
    gen.samples_per_dataset = scale.samples_per_dataset;
    util::Timer t;
    auto suite = dataset::generate_polybench_suite(gen);
    const int synth = util::env_int("POWERGEAR_SYNTH", 0);
    util::Rng rng(20260705);
    for (int k = 0; k < synth; ++k) {
        const ir::Function fn =
            kernels::build_synthetic(kernels::SyntheticSpec{}, rng, k);
        suite.push_back(dataset::generate_dataset_for(fn, gen));
    }
    std::printf("[setup] generated %zu datasets x %d samples in %.1fs "
                "(%d job%s)\n",
                suite.size(), scale.samples_per_dataset, t.seconds(),
                util::parallel_jobs(), util::parallel_jobs() == 1 ? "" : "s");
    return suite;
}

/// Leave-one-out evaluation iterates only the real Polybench datasets;
/// synthetic augmentation sets (appended after them) stay train-only.
inline std::size_t eval_count(const std::vector<dataset::Dataset>& suite) {
    return std::min(suite.size(), kernels::polybench_names().size());
}

/// Leave-one-out calibrated Vivado-like MAPE on the held-out dataset.
/// `total` selects total vs dynamic power.
inline double vivado_loo_mape(const std::vector<dataset::Dataset>& suite,
                              std::size_t held_out, bool total) {
    std::vector<double> est, truth;
    for (std::size_t d = 0; d < suite.size(); ++d) {
        if (d == held_out) continue;
        for (const auto& s : suite[d].samples) {
            est.push_back(total ? s.vivado_total_raw : s.vivado_dynamic_raw);
            truth.push_back(total ? s.total_power_w : s.dynamic_power_w);
        }
    }
    fpga::LinearCalibration cal;
    cal.fit(est, truth);
    std::vector<double> pred, meas;
    for (const auto& s : suite[held_out].samples) {
        pred.push_back(cal.apply(total ? s.vivado_total_raw : s.vivado_dynamic_raw));
        meas.push_back(total ? s.total_power_w : s.dynamic_power_w);
    }
    return util::mape(pred, meas);
}

/// Train HL-Pow on the leave-one-out pool; MAPE on the held-out dataset.
inline double hlpow_loo_mape(const std::vector<dataset::Dataset>& suite,
                             std::size_t held_out, dataset::PowerKind kind) {
    std::vector<std::vector<float>> X;
    std::vector<float> y;
    dataset::collect_hlpow(dataset::pool_except(suite, held_out), kind, X, y);
    hlpow::HlPowModel model;
    model.fit(X, y);
    std::vector<std::vector<float>> Xt;
    std::vector<float> yt;
    dataset::collect_hlpow(dataset::pool_of(suite[held_out]), kind, Xt, yt);
    return model.evaluate_mape(Xt, yt);
}

/// Train a PowerGear/GNN configuration on the pool; MAPE on held-out.
inline double gnn_loo_mape(const std::vector<dataset::Dataset>& suite,
                           std::size_t held_out,
                           const core::PowerGear::Options& opts) {
    core::PowerGear pg(opts);
    pg.fit(dataset::pool_except(suite, held_out));
    return pg.evaluate_mape(dataset::pool_of(suite[held_out]));
}

// --- DSE helpers (Table III / Fig. 4) --------------------------------------

/// Ground-truth objective points (latency from HLS, power from the board).
inline std::vector<dse::Point> truth_points(const dataset::Dataset& ds) {
    std::vector<dse::Point> pts;
    for (int i = 0; i < ds.size(); ++i) {
        const auto& s = ds.samples[static_cast<std::size_t>(i)];
        pts.push_back({static_cast<double>(s.latency_cycles), s.dynamic_power_w, i});
    }
    return pts;
}

/// DSE evaluation pool: the explored design space should be denser than the
/// training datasets (the paper explores each application's full sweep).
/// Separate from the training suite so leave-one-out stays honest.
inline dataset::Dataset dse_pool(const std::string& kernel) {
    dataset::GeneratorOptions gen;
    gen.samples_per_dataset = util::env_int("POWERGEAR_DSE_POINTS", 80);
    return dataset::generate_dataset(kernel, gen);
}

/// Predicted points with the calibrated Vivado-like model as the predictor.
/// Calibration uses every training dataset except `d`; predictions score the
/// dense `eval` pool of the held-out kernel.
inline std::vector<dse::Point> predicted_vivado(
    const std::vector<dataset::Dataset>& suite, std::size_t d,
    const dataset::Dataset& eval) {
    std::vector<double> est, truth;
    for (std::size_t k = 0; k < suite.size(); ++k) {
        if (k == d) continue;
        for (const auto& s : suite[k].samples) {
            est.push_back(s.vivado_dynamic_raw);
            truth.push_back(s.dynamic_power_w);
        }
    }
    fpga::LinearCalibration cal;
    cal.fit(est, truth);
    std::vector<dse::Point> pts = truth_points(eval);
    for (auto& p : pts)
        p.power = cal.apply(
            eval.samples[static_cast<std::size_t>(p.index)].vivado_dynamic_raw);
    return pts;
}

/// Predicted points with HL-Pow as the predictor (trained leave-one-out).
inline std::vector<dse::Point> predicted_hlpow(
    const std::vector<dataset::Dataset>& suite, std::size_t d,
    const dataset::Dataset& eval) {
    std::vector<std::vector<float>> X;
    std::vector<float> y;
    dataset::collect_hlpow(dataset::pool_except(suite, d),
                           dataset::PowerKind::Dynamic, X, y);
    hlpow::HlPowModel model;
    model.fit(X, y);
    std::vector<dse::Point> pts = truth_points(eval);
    for (auto& p : pts)
        p.power = model.predict(
            eval.samples[static_cast<std::size_t>(p.index)].hlpow_feats);
    return pts;
}

/// Predicted points with PowerGear as the predictor (trained leave-one-out).
inline std::vector<dse::Point> predicted_powergear(
    const std::vector<dataset::Dataset>& suite, std::size_t d,
    const dataset::Dataset& eval, const core::PowerGear::Options& opts) {
    core::PowerGear pg(opts);
    pg.fit(dataset::pool_except(suite, d));
    std::vector<dse::Point> pts = truth_points(eval);
    for (auto& p : pts)
        p.power =
            pg.estimate(eval.samples[static_cast<std::size_t>(p.index)]);
    return pts;
}

/// Save a table next to stdout output.
inline void emit(const util::Table& table, const std::string& csv_path) {
    std::printf("%s", table.to_ascii().c_str());
    if (table.save_csv(csv_path))
        std::printf("[saved] %s\n", csv_path.c_str());
}

} // namespace powergear::bench
