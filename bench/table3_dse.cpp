// Reproduces Table III: ADRS of prediction-model-guided design space
// exploration at total sampling budgets of 20%, 30% and 40% (initial budget
// 2%), with the Vivado-like estimator, HL-Pow and PowerGear as the dynamic
// power predictor. ADRS is averaged over the nine datasets; the two "gains"
// columns report PowerGear's relative improvement, as in the paper.
#include "bench_common.hpp"

using namespace powergear;

int main() {
    const util::BenchScale scale = util::bench_scale();
    const auto suite = bench::make_suite(scale);

    core::PowerGear::Options pg_opts =
        core::PowerGear::Options::from_bench_scale(scale,
                                                   dataset::PowerKind::Dynamic);

    // Predictions per dataset are budget-independent; compute them once.
    const std::size_t evals = bench::eval_count(suite);
    std::vector<std::vector<dse::Point>> viv(evals), hlp(evals), pgp(evals),
        truth(evals);
    for (std::size_t d = 0; d < evals; ++d) {
        util::Timer t;
        // Explore a denser pool of the held-out kernel's design space than
        // the training datasets provide.
        const dataset::Dataset pool = bench::dse_pool(suite[d].name);
        truth[d] = bench::truth_points(pool);
        viv[d] = bench::predicted_vivado(suite, d, pool);
        hlp[d] = bench::predicted_hlpow(suite, d, pool);
        pgp[d] = bench::predicted_powergear(suite, d, pool, pg_opts);
        std::printf("[%-8s] predictors ready in %.1fs (%d-point space)\n",
                    suite[d].name.c_str(), t.seconds(), pool.size());
    }

    util::Table table({"Budget", "Vivado", "HL-Pow", "PowerGear",
                       "Gain vs Vivado", "Gain vs HL-Pow"});
    // ADRS is averaged over datasets and over several explorer seeds (the
    // initial 2% sample is random; multiple runs remove its variance).
    constexpr int kExplorerSeeds = 7;
    for (double budget : {0.20, 0.30, 0.40}) {
        dse::ExplorerConfig cfg;
        cfg.total_budget = budget;
        std::vector<double> a_viv, a_hlp, a_pg;
        for (std::size_t d = 0; d < evals; ++d) {
            for (int seed = 0; seed < kExplorerSeeds; ++seed) {
                cfg.seed = static_cast<std::uint64_t>(seed);
                a_viv.push_back(dse::explore(viv[d], truth[d], cfg).adrs_value);
                a_hlp.push_back(dse::explore(hlp[d], truth[d], cfg).adrs_value);
                a_pg.push_back(dse::explore(pgp[d], truth[d], cfg).adrs_value);
            }
        }
        const double mv = util::mean(a_viv), mh = util::mean(a_hlp),
                     mp = util::mean(a_pg);
        auto gain = [&](double other) {
            return other > 0.0 ? 100.0 * (other - mp) / other : 0.0;
        };
        table.add_row({util::Table::num(100.0 * budget, 0) + "%",
                       util::Table::num(mv, 4), util::Table::num(mh, 4),
                       util::Table::num(mp, 4),
                       util::Table::num(gain(mv), 1) + "%",
                       util::Table::num(gain(mh), 1) + "%"});
    }

    std::printf("\nTable III (ADRS of HLS design space exploration):\n");
    bench::emit(table, "table3_dse.csv");
    return 0;
}
