// Extension ablation: the paper's Table II ablates the *model*; this bench
// ablates the *graph construction flow* itself (Fig. 2) — dynamic-power error
// when buffer insertion, datapath merging or graph trimming is disabled —
// plus the graph-size cost of skipping each pass. This quantifies DESIGN.md's
// claim that the construction passes, not just the conv, carry signal.
#include "bench_common.hpp"
#include "graphgen/features.hpp"
#include "hls/binding.hpp"
#include "hls/report.hpp"
#include "hls/scheduler.hpp"
#include "kernels/polybench.hpp"
#include "sim/interpreter.hpp"

using namespace powergear;

namespace {

/// Regenerate a suite with a specific graph-flow configuration. Labels and
/// metadata are reused from the normal generator; only graphs change.
std::vector<dataset::Dataset> suite_with_flow(
    const util::BenchScale& scale, const graphgen::GraphFlowOptions& flow) {
    dataset::GeneratorOptions gen;
    gen.samples_per_dataset = scale.samples_per_dataset;
    gen.run_vivado = false; // baseline estimates are unused in this ablation
    std::vector<dataset::Dataset> suite;
    for (const std::string& name : kernels::polybench_names()) {
        dataset::Dataset ds = dataset::generate_dataset(name, gen);
        // Rebuild every graph under the ablated flow.
        const ir::Function fn = kernels::build_polybench(name, gen.problem_size);
        sim::Interpreter interp(fn);
        sim::StimulusProfile stim = gen.stimulus;
        stim.seed = util::hash_mix(gen.seed, std::hash<std::string>{}(fn.name));
        sim::apply_stimulus(interp, fn, stim);
        const sim::Trace trace = interp.run();
        for (dataset::Sample& s : ds.samples) {
            const hls::ElabGraph elab = hls::elaborate(fn, s.directives);
            const hls::Schedule sched = hls::schedule(fn, elab);
            const hls::Binding binding = hls::bind(fn, elab, sched);
            const sim::ActivityOracle oracle(fn, elab, trace,
                                             sched.total_latency);
            s.graph = graphgen::construct_graph(fn, elab, binding, oracle, flow);
            s.tensors = gnn::GraphTensors::from(s.graph, s.metadata);
        }
        suite.push_back(std::move(ds));
    }
    return suite;
}

} // namespace

int main() {
    const util::BenchScale scale = util::bench_scale();

    struct Variant {
        const char* name;
        graphgen::GraphFlowOptions flow;
    };
    std::vector<Variant> variants = {
        {"full flow", {}},
        {"w/o buffer ins.", {false, true, true}},
        {"w/o merging", {true, false, true}},
        {"w/o trimming", {true, true, false}},
        {"raw DFG", {false, false, false}},
    };

    util::Table table(
        {"Flow variant", "Avg nodes", "Avg dyn err %", "Avg tot err %"});
    for (const Variant& v : variants) {
        util::Timer t;
        const auto suite = suite_with_flow(scale, v.flow);
        double nodes = 0.0;
        for (const auto& ds : suite) nodes += ds.avg_nodes();
        nodes /= static_cast<double>(suite.size());

        std::vector<double> dyn_errors, tot_errors;
        for (std::size_t d = 0; d < suite.size(); ++d) {
            core::PowerGear::Options o =
                core::PowerGear::Options::from_bench_scale(
                    scale, dataset::PowerKind::Dynamic);
            o.folds = 1; // single models keep the sweep tractable
            dyn_errors.push_back(bench::gnn_loo_mape(suite, d, o));
            o = core::PowerGear::Options::from_bench_scale(
                scale, dataset::PowerKind::Total);
            o.folds = 1;
            tot_errors.push_back(bench::gnn_loo_mape(suite, d, o));
        }
        table.add_row({v.name, util::Table::num(nodes, 0),
                       util::Table::num(util::mean(dyn_errors)),
                       util::Table::num(util::mean(tot_errors))});
        std::printf("[%-16s] done in %.1fs\n", v.name, t.seconds());
    }

    std::printf("\nGraph-construction-flow ablation (extension):\n");
    bench::emit(table, "ablation_flow.csv");
    return 0;
}
