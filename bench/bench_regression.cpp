// Perf-regression harness: hand-timed micro-kernel + estimate-batch
// benchmarks with a machine-readable trajectory.
//
//   bench_regression [--reps N] [--out FILE] [--baseline FILE]
//                    [--tolerance F] [--jobs N] [--filter SUBSTR]
//
// Runs each benchmark `reps` times (after one warmup + auto-calibration of
// an inner iteration count so every timed run covers >= ~20 ms), writes the
// results as "powergear-bench-v1" JSON — BENCH_<date>.json by default, the
// schema scripts/bench_gate.py and scripts/update_experiments.py consume —
// and, when --baseline is given, compares best-of-reps times against the
// committed baseline: any benchmark slower than (1 + tolerance) x baseline
// fails the run with exit code 1. Missing benchmarks (renames, deletions)
// fail too, so the gate cannot rot silently.
//
// Timing uses best-of-reps per-iteration wall time: the minimum is the run
// least disturbed by the machine, which is the stable statistic to gate on
// (median and the full run list are recorded for inspection). Benchmarks
// run with a single-threaded pool by default (--jobs to override) so the
// gate measures code, not the runner's core count.
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/powergear.hpp"
#include "core/serve/client.hpp"
#include "core/serve/server.hpp"
#include "dataset/generator.hpp"
#include "dataset/splits.hpp"
#include "dse/adrs.hpp"
#include "dse/stream_explorer.hpp"
#include "fpga/netlist.hpp"
#include "fpga/placement.hpp"
#include "gnn/model.hpp"
#include "graphgen/features.hpp"
#include "hls/binding.hpp"
#include "hls/report.hpp"
#include "hls/scheduler.hpp"
#include "kernels/polybench.hpp"
#include "kernels/synthetic.hpp"
#include "nn/kernels_cpu.hpp"
#include "obs/json.hpp"
#include "sim/interpreter.hpp"
#include "sim/stimulus.hpp"
#include "util/parallel.hpp"
#include "util/timer.hpp"

using namespace powergear;

namespace {

struct BenchResult {
    std::string name;
    int iters = 1;                ///< inner iterations per timed run
    std::vector<double> runs_ms;  ///< per-iteration ms, one entry per rep
    double throughput_per_s = 0.0; ///< 0 when the benchmark has no item count

    double best_ms() const {
        return *std::min_element(runs_ms.begin(), runs_ms.end());
    }
    double median_ms() const {
        std::vector<double> s = runs_ms;
        std::sort(s.begin(), s.end());
        return s[s.size() / 2];
    }
};

/// Time `fn` (one logical operation per call): calibrate an inner iteration
/// count so a run lasts >= min_run_ms, then produce `reps` per-iteration
/// timings. `items_per_iter` > 0 additionally derives throughput from the
/// best run.
template <typename Fn>
BenchResult run_bench(const std::string& name, int reps, Fn&& fn,
                      double items_per_iter = 0.0, double min_run_ms = 20.0) {
    BenchResult r;
    r.name = name;
    fn(); // warmup: faults pages, fills caches, triggers lazy init

    util::Timer cal;
    fn();
    const double once_ms = std::max(1e-6, cal.millis());
    r.iters = static_cast<int>(
        std::clamp(min_run_ms / once_ms, 1.0, 100000.0));

    for (int rep = 0; rep < reps; ++rep) {
        util::Timer t;
        for (int i = 0; i < r.iters; ++i) fn();
        r.runs_ms.push_back(t.millis() / r.iters);
    }
    if (items_per_iter > 0.0)
        r.throughput_per_s = items_per_iter / (r.best_ms() * 1e-3);
    std::printf("  %-22s best %10.4f ms  median %10.4f ms  (x%d iters)\n",
                name.c_str(), r.best_ms(), r.median_ms(), r.iters);
    return r;
}

/// The micro-kernel fixture from bench/micro_kernels.cpp, shared setup.
struct Prepared {
    ir::Function fn;
    sim::Trace trace;
    hls::ElabGraph elab;
    hls::Schedule sched;
    hls::Binding binding;
    graphgen::Graph graph;
    gnn::GraphTensors tensors;

    Prepared() : fn(kernels::build_polybench("gemm", 16)) {
        sim::Interpreter interp(fn);
        sim::apply_stimulus(interp, fn, {});
        trace = interp.run();
        const hls::DesignSpace space(fn);
        elab = hls::elaborate(fn, space.point(40 % space.size()));
        sched = hls::schedule(fn, elab);
        binding = hls::bind(fn, elab, sched);
        const sim::ActivityOracle oracle(fn, elab, trace, sched.total_latency);
        graph = graphgen::construct_graph(fn, elab, binding, oracle);
        std::vector<double> metadata(10, 1.0);
        tensors = gnn::GraphTensors::from(graph, metadata);
    }
};

/// NN-training fixture: a ~100-node synthetic kernel graph (the polybench
/// gemm graph has only ~21 nodes, far below the design sizes the estimator
/// targets) so conv_forward/train_epoch measure kernel throughput rather
/// than per-node bookkeeping.
struct TrainFixture {
    gnn::GraphTensors tensors;

    TrainFixture() {
        kernels::SyntheticSpec spec;
        spec.max_depth = 3;
        spec.num_arrays = 6;
        spec.ops_per_body = 40;
        util::Rng rng(99);
        ir::Function fn = kernels::build_synthetic(spec, rng, 1);
        sim::Interpreter interp(fn);
        sim::apply_stimulus(interp, fn, {});
        sim::Trace trace = interp.run();
        const hls::DesignSpace space(fn);
        auto elab = hls::elaborate(fn, space.point(0));
        auto sched = hls::schedule(fn, elab);
        auto binding = hls::bind(fn, elab, sched);
        const sim::ActivityOracle oracle(fn, elab, trace,
                                         sched.total_latency);
        auto graph = graphgen::construct_graph(fn, elab, binding, oracle);
        std::vector<double> metadata(10, 1.0);
        tensors = gnn::GraphTensors::from(graph, metadata);
    }
};

/// Trained-estimator fixture for the estimate_batch benchmark: a tiny but
/// real ensemble (2 folds) over two kernels, evaluated on a third.
struct EstimatorFixture {
    core::PowerGear pg;
    dataset::Dataset eval;

    EstimatorFixture()
        : pg([] {
              core::PowerGear::Options o;
              o.kind = dataset::PowerKind::Dynamic;
              o.hidden = 8;
              o.epochs = 2;
              o.folds = 2;
              o.seeds = 1;
              return o;
          }()) {
        dataset::GeneratorOptions gen;
        gen.samples_per_dataset = 8;
        gen.problem_size = 8;
        std::vector<dataset::Dataset> suite;
        suite.push_back(dataset::generate_dataset("atax", gen));
        suite.push_back(dataset::generate_dataset("bicg", gen));
        pg.fit(dataset::pool_except(suite, suite.size()));
        gen.samples_per_dataset = 24;
        eval = dataset::generate_dataset("mvt", gen);
    }
};

/// Peak resident set (VmHWM) in MiB, 0 when /proc is unavailable.
double peak_rss_mb() {
    std::FILE* f = std::fopen("/proc/self/status", "r");
    if (!f) return 0.0;
    char line[256];
    double kb = 0.0;
    while (std::fgets(line, sizeof line, f))
        if (std::sscanf(line, "VmHWM: %lf", &kb) == 1) break;
    std::fclose(f);
    return kb / 1024.0;
}

/// Deterministic synthetic scorer for the streaming-DSE benchmark: latency
/// and power are pure hash functions of the space index (a convex-ish
/// trade-off with jitter), so the sweep measures stream + archive + gate
/// machinery, not model inference.
dse::ScoredPoint dse_bench_score(std::uint64_t idx) {
    const double lat = 1.0 + static_cast<double>(
                                 util::hash_mix(idx, 0xB57) % 100000);
    dse::ScoredPoint sp;
    sp.latency = lat;
    sp.power = 20000.0 / lat + util::hash_jitter(0xD5E, idx, 0.05);
    sp.spread = 0.01 + util::hash_jitter(0x5B8, idx, 0.009);
    return sp;
}

std::string today() {
    std::time_t t = std::time(nullptr);
    std::tm tm{};
    localtime_r(&t, &tm);
    char buf[16];
    std::strftime(buf, sizeof buf, "%Y-%m-%d", &tm);
    return buf;
}

obs::JsonValue results_to_json(const std::vector<BenchResult>& results,
                               int reps) {
    obs::JsonValue root = obs::JsonValue::object();
    root.set("schema", obs::JsonValue("powergear-bench-v1"));
    root.set("date", obs::JsonValue(today()));
    root.set("reps", obs::JsonValue(static_cast<std::int64_t>(reps)));
    root.set("jobs",
             obs::JsonValue(static_cast<std::int64_t>(util::parallel_jobs())));
    obs::JsonValue benches = obs::JsonValue::object();
    for (const BenchResult& r : results) {
        obs::JsonValue b = obs::JsonValue::object();
        b.set("unit", obs::JsonValue("ms"));
        b.set("iters", obs::JsonValue(static_cast<std::int64_t>(r.iters)));
        b.set("best_ms", obs::JsonValue(r.best_ms()));
        b.set("median_ms", obs::JsonValue(r.median_ms()));
        obs::JsonValue runs = obs::JsonValue::array();
        for (double ms : r.runs_ms) runs.push_back(obs::JsonValue(ms));
        b.set("runs_ms", std::move(runs));
        if (r.throughput_per_s > 0.0)
            b.set("throughput_per_s", obs::JsonValue(r.throughput_per_s));
        benches.set(r.name, std::move(b));
    }
    root.set("benchmarks", std::move(benches));
    return root;
}

std::string read_file(const std::string& path) {
    std::FILE* f = std::fopen(path.c_str(), "r");
    if (!f) throw std::runtime_error("cannot open " + path);
    std::string out;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
    std::fclose(f);
    return out;
}

/// Gate current results against a committed baseline. Returns the number of
/// regressions (new benchmarks are reported but tolerated; missing ones are
/// regressions).
int compare_to_baseline(const std::vector<BenchResult>& results,
                        const std::string& baseline_path, double tolerance) {
    const obs::JsonValue base = obs::JsonValue::parse(read_file(baseline_path));
    if (base.at("schema").as_string() != "powergear-bench-v1")
        throw std::runtime_error("baseline: unexpected schema");
    int regressions = 0;
    std::printf("\nregression gate vs %s (tolerance %.0f%%):\n",
                baseline_path.c_str(), tolerance * 100.0);
    std::printf("  %-22s %12s %12s %8s  %s\n", "benchmark", "baseline_ms",
                "current_ms", "ratio", "verdict");
    for (const auto& [name, b] : base.at("benchmarks").as_object()) {
        const double base_ms = b.at("best_ms").as_number();
        const auto it =
            std::find_if(results.begin(), results.end(),
                         [&](const BenchResult& r) { return r.name == name; });
        if (it == results.end()) {
            std::printf("  %-22s %12.4f %12s %8s  MISSING\n", name.c_str(),
                        base_ms, "-", "-");
            ++regressions;
            continue;
        }
        const double cur_ms = it->best_ms();
        const double ratio = cur_ms / base_ms;
        const bool slow = ratio > 1.0 + tolerance;
        if (slow) ++regressions;
        std::printf("  %-22s %12.4f %12.4f %8.3f  %s\n", name.c_str(), base_ms,
                    cur_ms, ratio, slow ? "REGRESSION" : "ok");
    }
    for (const BenchResult& r : results) {
        if (!base.at("benchmarks").get(r.name))
            std::printf("  %-22s %12s %12.4f %8s  new (no baseline)\n",
                        r.name.c_str(), "-", r.best_ms(), "-");
    }
    return regressions;
}

int usage(const char* argv0) {
    std::fprintf(
        stderr,
        "usage: %s [--reps N] [--out FILE] [--baseline FILE]\n"
        "          [--tolerance F] [--jobs N] [--filter SUBSTR]\n"
        "exit codes: 0 ok, 1 regression vs baseline, 2 bad usage\n",
        argv0);
    return 2;
}

} // namespace

int main(int argc, char** argv) {
    int reps = 5;
    int jobs = 1;
    double tolerance = 0.10;
    std::string out_path, baseline_path, filter;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const bool has_next = i + 1 < argc;
        if (arg == "--reps" && has_next) reps = std::atoi(argv[++i]);
        else if (arg == "--out" && has_next) out_path = argv[++i];
        else if (arg == "--baseline" && has_next) baseline_path = argv[++i];
        else if (arg == "--tolerance" && has_next) tolerance = std::atof(argv[++i]);
        else if (arg == "--jobs" && has_next) jobs = std::atoi(argv[++i]);
        else if (arg == "--filter" && has_next) filter = argv[++i];
        else return usage(argv[0]);
    }
    if (reps < 1 || jobs < 1 || tolerance < 0.0) return usage(argv[0]);
    if (out_path.empty()) out_path = "BENCH_" + today() + ".json";
    util::set_parallel_jobs(jobs);

    try {
        std::printf("bench_regression: %d rep%s, jobs=%d\n", reps,
                    reps == 1 ? "" : "s", jobs);
        const Prepared p;
        std::vector<BenchResult> results;
        const auto want = [&](const char* name) {
            return filter.empty() || std::string(name).find(filter) !=
                                         std::string::npos;
        };

        if (want("ir_simulation")) {
            sim::Interpreter interp(p.fn);
            sim::apply_stimulus(interp, p.fn, {});
            results.push_back(run_bench("ir_simulation", reps, [&] {
                auto trace = interp.run();
                if (trace.executed_ops <= 0) std::abort();
            }));
        }
        if (want("schedule_bind"))
            results.push_back(run_bench("schedule_bind", reps, [&] {
                auto sched = hls::schedule(p.fn, p.elab);
                auto binding = hls::bind(p.fn, p.elab, sched);
                if (binding.num_units() <= 0) std::abort();
            }));
        if (want("graph_construction")) {
            const sim::ActivityOracle oracle(p.fn, p.elab, p.trace,
                                             p.sched.total_latency);
            results.push_back(run_bench("graph_construction", reps, [&] {
                auto g = graphgen::construct_graph(p.fn, p.elab, p.binding,
                                                   oracle);
                if (g.num_nodes <= 0) std::abort();
            }));
        }
        if (want("placement")) {
            const sim::ActivityOracle oracle(p.fn, p.elab, p.trace,
                                             p.sched.total_latency);
            const fpga::Netlist nl =
                fpga::build_netlist(p.fn, p.elab, p.binding, oracle);
            results.push_back(run_bench("placement", reps, [&] {
                auto placed = fpga::place(nl);
                if (placed.total_hpwl < 0) std::abort();
            }));
        }
        if (want("matmul128")) {
            util::Rng rng(3);
            const nn::Tensor a = nn::Tensor::xavier(128, 128, rng);
            const nn::Tensor b = nn::Tensor::xavier(128, 128, rng);
            results.push_back(run_bench("matmul128", reps, [&] {
                auto c = nn::matmul(a, b);
                if (c.rows() != 128) std::abort();
            }));
        }
        if (want("matmul_blocked")) {
            // The blocked kernel directly, bypassing dispatch: tracks the
            // register-tiled GEMM itself regardless of POWERGEAR_KERNEL.
            util::Rng rng(7);
            const nn::Tensor a = nn::Tensor::xavier(128, 128, rng);
            const nn::Tensor b = nn::Tensor::xavier(128, 128, rng);
            nn::Tensor c(128, 128);
            results.push_back(run_bench("matmul_blocked", reps, [&] {
                nn::kernels::matmul_blocked(128, 128, 128, a.data(), b.data(),
                                            c.data());
                if (c.at(0, 0) != c.at(0, 0)) std::abort();
            }));
        }
        if (want("conv_forward")) {
            // One HEC conv layer at the paper-adjacent width, tape reused
            // across iterations so the arena is grown once.
            const TrainFixture fx;
            util::Rng rng(11);
            gnn::HecConv conv(fx.tensors.x.cols(), 64,
                              graphgen::Graph::kEdgeDim, true, true, true,
                              rng);
            nn::Tape t;
            results.push_back(run_bench("conv_forward", reps, [&] {
                t.reset();
                const int out =
                    conv.forward(t, fx.tensors, t.input_view(fx.tensors.x));
                if (t.value(out).rows() != fx.tensors.num_nodes) std::abort();
            }));
        }
        if (want("hecgnn_forward")) {
            gnn::ModelConfig cfg;
            cfg.node_dim = p.tensors.x.cols();
            cfg.hidden = 32;
            gnn::PowerModel model(cfg);
            volatile float sink = 0.0f;
            results.push_back(run_bench("hecgnn_forward", reps, [&] {
                sink = model.predict(p.tensors);
            }));
            (void)sink;
        }
        if (want("gen_warm_cache")) {
            // Warm-cache dataset regeneration: one cold run fills a private
            // pipeline cache, then every timed run replays the same dataset
            // from stored artifacts (sim trace peek + per-sample loads).
            namespace fs = std::filesystem;
            const fs::path cache_root =
                fs::temp_directory_path() /
                ("powergear_bench_cache_" + std::to_string(::getpid()));
            fs::remove_all(cache_root);
            dataset::GeneratorOptions gen;
            gen.samples_per_dataset = 8;
            gen.problem_size = 8;
            gen.cache_dir = cache_root.string();
            const dataset::Dataset cold = dataset::generate_dataset("gemm", gen);
            results.push_back(run_bench(
                "gen_warm_cache", reps,
                [&] {
                    auto warm = dataset::generate_dataset("gemm", gen);
                    if (warm.samples.size() != cold.samples.size())
                        std::abort();
                },
                static_cast<double>(cold.samples.size())));
            fs::remove_all(cache_root);
        }
        if (want("train_epoch")) {
            // Full forward+backward+Adam over one mini-batch-sized epoch at
            // hidden=64, where the matmul kernels dominate the profile.
            const TrainFixture fx;
            gnn::ModelConfig cfg;
            cfg.node_dim = fx.tensors.x.cols();
            cfg.hidden = 64;
            gnn::PowerModel model(cfg);
            const std::vector<const gnn::GraphTensors*> graphs(8,
                                                               &fx.tensors);
            const std::vector<float> targets(8, 1.5f);
            results.push_back(run_bench(
                "train_epoch", reps,
                [&] {
                    const double loss = model.train_epoch(graphs, targets, 8);
                    if (!(loss >= 0.0)) std::abort();
                },
                static_cast<double>(graphs.size())));
        }
        if (want("estimate_batch")) {
            const EstimatorFixture fx;
            const core::SamplePool pool = dataset::pool_of(fx.eval);
            results.push_back(run_bench(
                "estimate_batch", reps,
                [&] {
                    auto ests = fx.pg.estimate_batch(pool);
                    if (ests.size() != pool.size()) std::abort();
                },
                static_cast<double>(pool.size())));
        }

        if (want("dse_stream_100k")) {
            // Streaming DSE sweep: pull 100k of a ~10^6-point space through
            // the lazy stream, score with a closed-form synthetic model and
            // fold into the incremental archives with the spread gate on.
            // Measures stream + archive + promotion machinery in bounded
            // memory (the ADRS/RSS lines below are the EXPERIMENTS.md
            // evidence, reported outside the timed region).
            const std::uint64_t space = 1000003;
            dse::StreamConfig scfg;
            scfg.chunk = 64;
            scfg.max_points = 100000;
            scfg.spread_gate = 0.5;
            const dse::StreamingExplorer ex(scfg);
            const dse::ChunkScorer scorer =
                [](std::span<const std::uint64_t> idx) {
                    std::vector<dse::ScoredPoint> out;
                    out.reserve(idx.size());
                    for (const std::uint64_t i : idx)
                        out.push_back(dse_bench_score(i));
                    return out;
                };
            const dse::TruthFn truth = [](std::uint64_t idx,
                                          const dse::ScoredPoint& sp) {
                return sp.power + util::hash_jitter(0x7B0, idx, 0.02);
            };
            dse::StreamResult last;
            results.push_back(run_bench(
                "dse_stream_100k", reps,
                [&] {
                    dse::CandidateStream stream(space);
                    last = ex.run(stream, scorer, truth);
                    if (last.stats.scored != scfg.max_points) std::abort();
                },
                static_cast<double>(scfg.max_points)));
            // Exact frontier of every scored point's ground truth — the
            // reference the streamed (gated, promoted-only) frontier is
            // scored against.
            std::vector<dse::Point> exact;
            dse::CandidateStream replay(space, 0, 1, scfg.max_points);
            while (auto idx = replay.next()) {
                const dse::ScoredPoint sp = dse_bench_score(*idx);
                exact.push_back(dse::Point{
                    sp.latency, truth(*idx, sp),
                    static_cast<std::int64_t>(*idx)});
            }
            std::printf(
                "  %-22s ADRS %.4f  front %zu/%zu  promoted %llu  peak RSS "
                "%.0f MiB\n",
                "", dse::adrs(dse::pareto_front(exact), last.true_front),
                last.true_front.size(), dse::pareto_front(exact).size(),
                static_cast<unsigned long long>(last.stats.promoted),
                peak_rss_mb());
        }

        if (want("serve_pipeline16")) {
            // Warm-daemon round trip: 16 estimates pipelined over one
            // connection, coalesced by the admission queue into a single
            // PowerGear::estimate_batch (max_batch 16 makes the batcher
            // fire exactly when the burst has landed instead of waiting
            // out the linger window).
            const EstimatorFixture fx;
            const std::string tag = std::to_string(::getpid());
            const std::string sock = "/tmp/pgbench_reg_" + tag + ".sock";
            const std::string model = "/tmp/pgbench_reg_" + tag + ".pgm";
            fx.pg.save(model);
            core::serve::ServerConfig cfg;
            cfg.socket_path = sock;
            cfg.model_path = model;
            cfg.max_batch = 16;
            cfg.batch_window_us = 5000;
            core::serve::Server server(cfg);
            server.start();
            {
                core::serve::Client client(sock);
                std::vector<const dataset::Sample*> ptrs;
                for (std::size_t i = 0; i < 16; ++i)
                    ptrs.push_back(
                        &fx.eval.samples[i % fx.eval.samples.size()]);
                results.push_back(run_bench(
                    "serve_pipeline16", reps,
                    [&] {
                        if (client.estimate_batch(ptrs).size() != 16)
                            std::abort();
                    },
                    16.0));
            }
            server.stop();
            std::filesystem::remove(model);
        }

        if (results.empty()) {
            std::fprintf(stderr, "error: --filter '%s' matched nothing\n",
                         filter.c_str());
            return 2;
        }

        const obs::JsonValue doc = results_to_json(results, reps);
        std::FILE* f = std::fopen(out_path.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
            return 2;
        }
        const std::string body = doc.dump(2) + "\n";
        std::fwrite(body.data(), 1, body.size(), f);
        std::fclose(f);
        std::printf("[saved] %s\n", out_path.c_str());

        if (!baseline_path.empty()) {
            const int regressions =
                compare_to_baseline(results, baseline_path, tolerance);
            if (regressions > 0) {
                std::printf("bench_regression: %d benchmark(s) regressed\n",
                            regressions);
                return 1;
            }
            std::printf("bench_regression: no regressions\n");
        }
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
    }
}
